"""Wire schema v1: versioned JSON encoding of run and grid submissions.

This is the frozen contract shared by ``repro serve`` (the server),
:class:`repro.client.SweepClient`, and the CLI: a :class:`~repro.sim.spec.
RunSpec` encoded here, shipped over HTTP, and decoded on the other side
produces **byte-identical result-store keys** to a spec built locally — so
remote submissions and ``repro sweep`` interchange results freely.

Schema rules (v1):

* Every payload carries ``"v": 1``. A missing or different version is
  rejected (:class:`WireError`), never guessed at.
* Unknown top-level keys are rejected with an error naming the offending
  field (and the closest known spelling) — a typo'd ``num_opss`` must fail
  loudly at the submission boundary, not silently mean "the default".
* The one forward-compatibility escape hatch is ``"ext"``: a dict that v1
  readers carry along and ignore, so future writers can attach data
  without breaking deployed readers. Anything that must *change meaning*
  bumps ``v``.
* Payloads are sparse: fields at their default are omitted by writers and
  defaulted by readers, so the wire form stays small and stable.

Only *wire-encodable* specs are accepted: registry-named workloads and
predictors, no probe instances, no branch-predictor overrides. Host-local
execution detail (``trace_dir``) never crosses the wire — the server
applies its own artifact stores. Identity (``RunSpec.key()``) survives the
round trip exactly; see ``docs/server.md`` for the full field table.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, fields, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.config import GENERATIONS, CoreConfig
from repro.isa.microop import OpKind
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.sim.spec import RunSpec
from repro.workloads.generator import WorkloadProfile

#: The wire-format version this build speaks. Bump only on an incompatible
#: change of meaning; additive data rides in ``"ext"``.
WIRE_VERSION = 1


class WireError(ValueError):
    """A payload (or spec) that cannot cross the wire, with the field named.

    ``field`` is the offending field path (``"predictor"``,
    ``"config.hierarchy.l1d.ways"``); ``value`` the rejected value;
    ``choices`` the valid alternatives when they are enumerable. The
    server renders :meth:`to_payload` as the body of a structured 422.
    """

    def __init__(
        self,
        message: str,
        field: Optional[str] = None,
        value: object = None,
        choices: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(message)
        self.field = field
        self.value = value
        self.choices = tuple(choices) if choices is not None else None

    def to_payload(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"message": str(self)}
        if self.field is not None:
            payload["field"] = self.field
        if self.value is not None:
            payload["value"] = repr(self.value)
        if self.choices is not None:
            payload["choices"] = list(self.choices)
        return payload


def _reject_unknown_keys(
    payload: Mapping[str, object], known: Sequence[str], where: str
) -> None:
    unknown = sorted(set(payload) - set(known))
    if not unknown:
        return
    hints = []
    for key in unknown:
        close = difflib.get_close_matches(key, known, n=1)
        hints.append(f"{key!r}" + (f" (did you mean {close[0]!r}?)" if close else ""))
    raise WireError(
        f"unknown {where} field(s): {', '.join(hints)}; v{WIRE_VERSION} "
        "readers reject unrecognised keys — put forward-compatible data "
        "under 'ext'",
        field=unknown[0],
    )


def _check_version(payload: Mapping[str, object], where: str) -> None:
    if "v" not in payload:
        raise WireError(f"{where} payload is missing the 'v' version field", field="v")
    version = payload["v"]
    if version != WIRE_VERSION:
        raise WireError(
            f"unsupported {where} wire version {version!r}; this build "
            f"speaks v{WIRE_VERSION}",
            field="v",
            value=version,
        )


def _typed(
    payload: Mapping[str, object],
    key: str,
    kinds: Tuple[type, ...],
    what: str,
    field: Optional[str] = None,
) -> object:
    value = payload.get(key)
    if value is None:
        return None
    # bool is an int subclass; an explicit check keeps `true` out of int slots.
    if isinstance(value, bool) and bool not in kinds:
        raise WireError(
            f"{key} must be {what}, got {value!r}", field=field or key, value=value
        )
    if not isinstance(value, kinds):
        raise WireError(
            f"{key} must be {what}, got {value!r}", field=field or key, value=value
        )
    return value


# ------------------------------------------------------------------ config --


def _opkind_map_to_wire(mapping: Mapping[OpKind, int]) -> Dict[str, int]:
    return {kind.value: int(count) for kind, count in sorted(
        mapping.items(), key=lambda item: item[0].value
    )}


def _opkind_map_from_wire(
    payload: object, field: str
) -> Dict[OpKind, int]:
    if not isinstance(payload, Mapping):
        raise WireError(f"{field} must be an object", field=field, value=payload)
    result: Dict[OpKind, int] = {}
    for name, count in payload.items():
        try:
            kind = OpKind(name)
        except ValueError:
            raise WireError(
                f"unknown op kind {name!r} in {field}",
                field=f"{field}.{name}",
                value=name,
                choices=[kind.value for kind in OpKind],
            ) from None
        if isinstance(count, bool) or not isinstance(count, int):
            raise WireError(
                f"{field}.{name} must be an integer, got {count!r}",
                field=f"{field}.{name}",
                value=count,
            )
        result[kind] = count
    return result


def _dataclass_from_wire(cls, payload: object, field: str):
    """Rebuild a flat frozen dataclass (CacheConfig) from a wire dict."""
    if not isinstance(payload, Mapping):
        raise WireError(f"{field} must be an object", field=field, value=payload)
    known = [f.name for f in fields(cls)]
    _reject_unknown_keys(payload, known, field)
    try:
        return cls(**dict(payload))
    except (TypeError, ValueError) as exc:
        raise WireError(f"invalid {field}: {exc}", field=field) from exc


def _hierarchy_to_wire(hierarchy: HierarchyConfig) -> Dict[str, object]:
    wire: Dict[str, object] = {}
    for spec_field in fields(HierarchyConfig):
        value = getattr(hierarchy, spec_field.name)
        if isinstance(value, CacheConfig):
            wire[spec_field.name] = {
                f.name: getattr(value, f.name) for f in fields(CacheConfig)
            }
        else:
            wire[spec_field.name] = value
    return wire


def _hierarchy_from_wire(payload: object, field: str) -> HierarchyConfig:
    if not isinstance(payload, Mapping):
        raise WireError(f"{field} must be an object", field=field, value=payload)
    known = [f.name for f in fields(HierarchyConfig)]
    _reject_unknown_keys(payload, known, field)
    kwargs: Dict[str, object] = {}
    for spec_field in fields(HierarchyConfig):
        if spec_field.name not in payload:
            continue
        value = payload[spec_field.name]
        if spec_field.name.startswith("l"):
            value = _dataclass_from_wire(
                CacheConfig, value, f"{field}.{spec_field.name}"
            )
        kwargs[spec_field.name] = value
    try:
        return HierarchyConfig(**kwargs)
    except (TypeError, ValueError) as exc:
        raise WireError(f"invalid {field}: {exc}", field=field) from exc


#: CoreConfig fields that are plain scalars on the wire.
_CONFIG_SCALARS = tuple(
    f.name
    for f in fields(CoreConfig)
    if f.name not in ("latencies", "ports", "hierarchy")
)


def config_to_wire(config: Optional[CoreConfig]) -> Optional[object]:
    """Encode a core config: ``None``, a generation name, or a full dict.

    A config that *is* one of the :data:`~repro.core.config.GENERATIONS`
    presets (field-for-field) travels as its name — compact, and immune to
    field-set drift. Anything custom travels as the complete field dict, so
    the receiver rebuilds an equal ``CoreConfig`` and therefore an equal
    ``config_fingerprint`` (the store-key ingredient).
    """
    if config is None:
        return None
    preset = GENERATIONS.get(config.name)
    if preset is not None and preset == config:
        return config.name
    wire: Dict[str, object] = {name: getattr(config, name) for name in _CONFIG_SCALARS}
    wire["latencies"] = _opkind_map_to_wire(config.latencies)
    wire["ports"] = _opkind_map_to_wire(config.ports)
    wire["hierarchy"] = _hierarchy_to_wire(config.hierarchy)
    return wire


def config_from_wire(payload: object, field: str = "config") -> Optional[CoreConfig]:
    """Decode :func:`config_to_wire` output back to an equal ``CoreConfig``."""
    if payload is None:
        return None
    if isinstance(payload, str):
        preset = GENERATIONS.get(payload)
        if preset is None:
            raise WireError(
                f"unknown core generation {payload!r}",
                field=field,
                value=payload,
                choices=sorted(GENERATIONS),
            )
        return preset
    if not isinstance(payload, Mapping):
        raise WireError(
            f"{field} must be null, a generation name, or an object",
            field=field,
            value=payload,
        )
    known = list(_CONFIG_SCALARS) + ["latencies", "ports", "hierarchy"]
    _reject_unknown_keys(payload, known, field)
    kwargs: Dict[str, object] = {
        name: payload[name] for name in _CONFIG_SCALARS if name in payload
    }
    if "latencies" in payload:
        kwargs["latencies"] = _opkind_map_from_wire(
            payload["latencies"], f"{field}.latencies"
        )
    if "ports" in payload:
        kwargs["ports"] = _opkind_map_from_wire(payload["ports"], f"{field}.ports")
    if "hierarchy" in payload:
        kwargs["hierarchy"] = _hierarchy_from_wire(
            payload["hierarchy"], f"{field}.hierarchy"
        )
    try:
        return CoreConfig(**kwargs)
    except (TypeError, ValueError) as exc:
        raise WireError(f"invalid {field}: {exc}", field=field) from exc


# -------------------------------------------------------------------- spec --

#: Top-level keys a v1 spec payload may carry.
SPEC_WIRE_KEYS = (
    "v",
    "workload",
    "predictor",
    "config",
    "num_ops",
    "warmup_ops",
    "seed",
    "check_invariants",
    "interval_ops",
    "backend",
    "ext",
)


def _wire_workload_name(spec: RunSpec) -> str:
    """The registry name a spec's workload travels as (or a WireError).

    Profile *instances* are accepted only when they are exactly the
    registered profile (the common ``workload(name)`` round trip); a
    customised or re-seeded instance has no wire identity — the seed
    override belongs on ``RunSpec.seed`` (which is what the store key
    reads) and custom profiles must be registered on the server side.
    """
    if isinstance(spec.workload, str):
        return spec.workload
    profile = spec.workload
    from repro.workloads.spec2017 import SPEC_PROFILES

    base = SPEC_PROFILES.get(profile.name)
    if base is None:
        raise WireError(
            f"workload profile {profile.name!r} is not a registered profile; "
            "wire v1 carries registry names only",
            field="workload",
            value=profile.name,
        )
    if replace(base, seed=profile.seed) != profile:
        raise WireError(
            f"workload profile {profile.name!r} was customised beyond its "
            "seed; wire v1 carries registry names only",
            field="workload",
            value=profile.name,
        )
    if profile.seed != base.seed and spec.seed is None:
        raise WireError(
            f"workload profile {profile.name!r} carries a non-default seed "
            f"({profile.seed}); put the override on RunSpec.seed so the "
            "store key and the wire form agree",
            field="seed",
            value=profile.seed,
        )
    return profile.name


def spec_to_wire(spec: RunSpec) -> Dict[str, object]:
    """Encode a :class:`RunSpec` as a v1 wire payload (sparse dict).

    Raises :class:`WireError` for specs that cannot cross a process
    boundary by name: predictor/branch-predictor instances, probe objects,
    customised workload profiles. ``trace_dir`` is host-local execution
    detail and is deliberately dropped — identity (``spec.key()``) is
    preserved exactly.
    """
    if not isinstance(spec.predictor, str):
        raise WireError(
            "predictor instances are not wire-encodable; register the "
            "factory (repro.api.register_predictor) and submit its name",
            field="predictor",
            value=spec.predictor_label,
        )
    if spec.probes:
        raise WireError(
            "probe instances are not wire-encodable; the server attaches "
            "its own heartbeat probes",
            field="probes",
        )
    if spec.branch_predictor is not None:
        raise WireError(
            "branch-predictor overrides are not wire-encodable",
            field="branch_predictor",
        )
    wire: Dict[str, object] = {
        "v": WIRE_VERSION,
        "workload": _wire_workload_name(spec),
        "predictor": spec.predictor,
    }
    if spec.config is not None:
        wire["config"] = config_to_wire(spec.config)
    for name in ("num_ops", "warmup_ops", "seed", "interval_ops"):
        value = getattr(spec, name)
        if value is not None:
            wire[name] = value
    if spec.check_invariants is not None:
        wire["check_invariants"] = spec.check_invariants
    if spec.backend is not None:
        wire["backend"] = spec.backend
    return wire


def spec_from_wire(payload: object) -> RunSpec:
    """Decode a v1 wire payload into a :class:`RunSpec`.

    Enforces the schema rules documented at module level: version pinning,
    unknown-key rejection (with a nearest-spelling hint), per-field type
    checks. Registry *name* validation (does this predictor exist?) is the
    submission boundary's job — :func:`repro.server.jobs.validate_names` —
    so the codec stays usable for offline round trips.
    """
    if not isinstance(payload, Mapping):
        raise WireError(f"spec payload must be an object, got {type(payload).__name__}")
    _check_version(payload, "spec")
    _reject_unknown_keys(payload, SPEC_WIRE_KEYS, "spec")
    workload = _typed(payload, "workload", (str,), "a workload name string")
    if not workload:
        raise WireError("spec payload is missing 'workload'", field="workload")
    predictor = _typed(payload, "predictor", (str,), "a predictor name string")
    if not predictor:
        raise WireError("spec payload is missing 'predictor'", field="predictor")
    ext = payload.get("ext")
    if ext is not None and not isinstance(ext, Mapping):
        raise WireError("ext must be an object", field="ext", value=ext)
    try:
        return RunSpec(
            workload=workload,
            predictor=predictor,
            config=config_from_wire(payload.get("config")),
            num_ops=_typed(payload, "num_ops", (int,), "an integer"),
            warmup_ops=_typed(payload, "warmup_ops", (int,), "an integer"),
            seed=_typed(payload, "seed", (int,), "an integer"),
            check_invariants=_typed(
                payload, "check_invariants", (bool,), "a boolean"
            ),
            interval_ops=_typed(payload, "interval_ops", (int,), "an integer"),
            backend=_typed(payload, "backend", (str,), "a backend name string"),
        )
    except ValueError as exc:
        if isinstance(exc, WireError):
            raise
        raise WireError(f"invalid spec: {exc}") from exc


# -------------------------------------------------------------------- grid --

#: Top-level keys a v1 grid payload may carry.
GRID_WIRE_KEYS = (
    "v",
    "workloads",
    "predictors",
    "config",
    "num_ops",
    "seed",
    "check_invariants",
    "backend",
    "ext",
)


@dataclass(frozen=True)
class WireGrid:
    """A decoded grid submission: the (workloads × predictors) population.

    ``num_ops=0`` keeps the established cell-key convention: "the default
    trace length at run time" (see :meth:`RunSpec.key`).
    """

    workloads: Tuple[str, ...]
    predictors: Tuple[str, ...]
    config: Optional[CoreConfig] = None
    num_ops: int = 0
    seed: Optional[int] = None
    check_invariants: bool = False
    backend: Optional[str] = None

    def specs(self) -> List[RunSpec]:
        """The grid expanded to one :class:`RunSpec` per cell, in grid order."""
        return [
            RunSpec(
                workload=workload,
                predictor=predictor,
                config=self.config,
                num_ops=self.num_ops or None,
                seed=self.seed,
                backend=self.backend,
            )
            for workload in self.workloads
            for predictor in self.predictors
        ]


def _name_list(payload: Mapping[str, object], key: str) -> Tuple[str, ...]:
    value = payload.get(key)
    if (
        not isinstance(value, Sequence)
        or isinstance(value, (str, bytes))
        or not value
        or not all(isinstance(item, str) and item for item in value)
    ):
        raise WireError(
            f"{key} must be a non-empty list of name strings, got {value!r}",
            field=key,
            value=value,
        )
    return tuple(value)


def grid_to_wire(grid: WireGrid) -> Dict[str, object]:
    """Encode a :class:`WireGrid` as a v1 wire payload (sparse dict)."""
    wire: Dict[str, object] = {
        "v": WIRE_VERSION,
        "workloads": list(grid.workloads),
        "predictors": list(grid.predictors),
    }
    if grid.config is not None:
        wire["config"] = config_to_wire(grid.config)
    if grid.num_ops:
        wire["num_ops"] = grid.num_ops
    if grid.seed is not None:
        wire["seed"] = grid.seed
    if grid.check_invariants:
        wire["check_invariants"] = True
    if grid.backend is not None:
        wire["backend"] = grid.backend
    return wire


def grid_from_wire(payload: object) -> WireGrid:
    """Decode a v1 grid payload (same schema rules as :func:`spec_from_wire`)."""
    if not isinstance(payload, Mapping):
        raise WireError(f"grid payload must be an object, got {type(payload).__name__}")
    _check_version(payload, "grid")
    _reject_unknown_keys(payload, GRID_WIRE_KEYS, "grid")
    ext = payload.get("ext")
    if ext is not None and not isinstance(ext, Mapping):
        raise WireError("ext must be an object", field="ext", value=ext)
    num_ops = _typed(payload, "num_ops", (int,), "an integer")
    if num_ops is not None and num_ops < 0:
        raise WireError(
            f"num_ops must be >= 0, got {num_ops}", field="num_ops", value=num_ops
        )
    return WireGrid(
        workloads=_name_list(payload, "workloads"),
        predictors=_name_list(payload, "predictors"),
        config=config_from_wire(payload.get("config")),
        num_ops=num_ops or 0,
        seed=_typed(payload, "seed", (int,), "an integer"),
        check_invariants=bool(
            _typed(payload, "check_invariants", (bool,), "a boolean") or False
        ),
        backend=_typed(payload, "backend", (str,), "a backend name string"),
    )


def is_grid_payload(payload: Mapping[str, object]) -> bool:
    """Discriminate the two submission shapes (grids carry ``workloads``)."""
    return "workloads" in payload or "predictors" in payload


# ------------------------------------------------------------------ tenant --

#: The ``ext`` key the tenant convention rides under (see docs/api.md).
#: Carrying the tenant id in ``ext`` keeps it out of cell identity — two
#: tenants submitting the same grid share store keys — and needs no v2:
#: v1 readers that don't speak tenancy carry it along untouched.
EXT_TENANT_KEY = "tenant"


def attach_tenant(wire: Dict[str, object], tenant: str) -> Dict[str, object]:
    """Attach a tenant id to an encoded payload via the ``ext`` escape hatch.

    Mutates and returns ``wire``. An existing ``ext`` dict is preserved;
    only its ``tenant`` key is written.
    """
    if not isinstance(tenant, str) or not tenant:
        raise WireError(
            "tenant must be a non-empty string",
            field=f"ext.{EXT_TENANT_KEY}",
            value=tenant,
        )
    ext = wire.get("ext")
    if ext is None:
        ext = {}
        wire["ext"] = ext
    elif not isinstance(ext, dict):
        raise WireError("ext must be an object", field="ext", value=ext)
    ext[EXT_TENANT_KEY] = tenant
    return wire


def tenant_from_payload(payload: Mapping[str, object]) -> Optional[str]:
    """The tenant id riding in a payload's ``ext``, validated, or ``None``.

    Malformed shapes (``ext`` not an object, a non-string or empty tenant)
    raise :class:`WireError` rather than silently dropping attribution —
    a submission that *tries* to name a tenant must not sneak past that
    tenant's quota because of a type slip.
    """
    ext = payload.get("ext")
    if ext is None:
        return None
    if not isinstance(ext, Mapping):
        raise WireError("ext must be an object", field="ext", value=ext)
    tenant = ext.get(EXT_TENANT_KEY)
    if tenant is None:
        return None
    if not isinstance(tenant, str) or not tenant:
        raise WireError(
            "ext.tenant must be a non-empty string",
            field=f"ext.{EXT_TENANT_KEY}",
            value=tenant,
        )
    return tenant
