"""SweepClient: submit simulations to a ``repro serve`` instance.

A thin stdlib (``http.client``) wrapper over the v1 wire API — the same
schema module the server decodes with, so a spec that round-trips locally
is exactly what the server keys its store on. Typical use:

>>> from repro.api import RunSpec, SweepClient          # doctest: +SKIP
>>> client = SweepClient("http://127.0.0.1:8321")       # doctest: +SKIP
>>> receipt = client.submit_grid(                       # doctest: +SKIP
...     workloads=["511.povray"], predictors=["phast", "store-sets"],
...     num_ops=5000)
>>> status = client.wait(receipt["id"])                 # doctest: +SKIP
>>> results = client.results(receipt["id"])             # doctest: +SKIP

Every non-2xx response raises :class:`ServerError` carrying the decoded
error payload — for a 422 that includes the offending ``field`` and, when
enumerable, the valid ``choices``.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from repro.api.wire import (
    WIRE_VERSION,
    WireGrid,
    attach_tenant,
    grid_to_wire,
    spec_to_wire,
)
from repro.sim.metrics import SimResult
from repro.sim.spec import RunSpec


class ServerError(Exception):
    """A non-2xx server response; ``payload`` is the decoded error body."""

    def __init__(self, status: int, payload: Dict[str, object]) -> None:
        message = str(payload.get("message", payload))
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload
        self.field = payload.get("field")
        self.choices = payload.get("choices")


class SweepClient:
    """Talks the v1 wire API to one server; one connection per call.

    ``tenant`` attributes every submission this client makes: it travels as
    an ``Authorization: Bearer`` header *and* in the payload's ``ext``
    escape hatch (the two carriers the server accepts — see docs/api.md),
    and the server enforces that tenant's quota policy against it.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        tenant: Optional[str] = None,
    ) -> None:
        split = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if split.scheme not in ("http", ""):
            raise ValueError(f"only http:// servers are supported, got {base_url!r}")
        if not split.hostname:
            raise ValueError(f"no host in server url {base_url!r}")
        self.host = split.hostname
        self.port = split.port or 8321
        self.timeout = timeout
        self.tenant = tenant

    # ------------------------------------------------------------ plumbing --

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, dict]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            if self.tenant is not None:
                headers["Authorization"] = f"Bearer {self.tenant}"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            decoded = json.loads(raw) if raw else {}
        finally:
            conn.close()
        if response.status >= 400:
            error = decoded.get("error", decoded) if isinstance(decoded, dict) else {}
            raise ServerError(response.status, error)
        return response.status, decoded

    # ------------------------------------------------------------- surface --

    def health(self) -> dict:
        return self._request("GET", "/v1/health")[1]

    def submit_spec(self, spec: RunSpec) -> dict:
        """Submit one :class:`RunSpec`; returns the submission receipt.

        The receipt's ``cached``/``scheduled`` counts report the server-side
        store dedupe: an already-answered cell is never scheduled.
        """
        return self._request("POST", "/v1/jobs", self._with_tenant(spec_to_wire(spec)))[
            1
        ]

    def _with_tenant(self, wire: dict) -> dict:
        if self.tenant is not None:
            attach_tenant(wire, self.tenant)
        return wire

    def submit_grid(
        self,
        workloads: Sequence[str],
        predictors: Sequence[str],
        config=None,
        num_ops: int = 0,
        seed: Optional[int] = None,
        check_invariants: bool = False,
        backend: Optional[str] = None,
    ) -> dict:
        """Submit a (workloads × predictors) grid; returns the receipt."""
        grid = WireGrid(
            workloads=tuple(workloads),
            predictors=tuple(predictors),
            config=config,
            num_ops=num_ops,
            seed=seed,
            check_invariants=check_invariants,
            backend=backend,
        )
        return self._request("POST", "/v1/jobs", self._with_tenant(grid_to_wire(grid)))[
            1
        ]

    def predict_spec(self, spec: RunSpec) -> dict:
        """Score one spec with the server's surrogate model.

        Returns the full predict payload (``predictions`` holds one tagged
        estimate with ``ipc``/``ipc_ci``/``violation_mpki``/… fields). No
        job is created and no simulator work is scheduled; a server without
        a loaded model answers 503.
        """
        return self._request(
            "POST", "/v1/predict", self._with_tenant(spec_to_wire(spec))
        )[1]

    def predict(
        self,
        workloads: Sequence[str],
        predictors: Sequence[str],
        config=None,
        num_ops: int = 0,
        seed: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> dict:
        """Score a (workloads × predictors) grid with the surrogate model.

        Answers in milliseconds from the model alone — estimates carry
        confidence intervals and are tagged ``"surrogate": true``, so they
        can never be mistaken for detailed results.
        """
        grid = WireGrid(
            workloads=tuple(workloads),
            predictors=tuple(predictors),
            config=config,
            num_ops=num_ops,
            seed=seed,
            backend=backend,
        )
        return self._request(
            "POST", "/v1/predict", self._with_tenant(grid_to_wire(grid))
        )[1]

    def jobs(self) -> List[dict]:
        return self._request("GET", "/v1/jobs")[1]["jobs"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")[1]

    def events(self, job_id: str, since: int = 0) -> dict:
        """Non-blocking poll of the job's event log past ``since``."""
        return self._request("GET", f"/v1/jobs/{job_id}/events?since={since}")[1]

    def results(self, job_id: str) -> Dict[Tuple[str, str], SimResult]:
        """Durable results keyed by (workload, predictor); missing cells absent."""
        payload = self._request("GET", f"/v1/jobs/{job_id}/results")[1]
        out: Dict[Tuple[str, str], SimResult] = {}
        for cell in payload["cells"]:
            if cell.get("result") is not None:
                out[(cell["workload"], cell["predictor"])] = SimResult.from_record(
                    cell["result"]
                )
        return out

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")[1]

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll_seconds: float = 0.25,
    ) -> dict:
        """Poll until the job is terminal; returns its final status payload."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("completed", "cancelled", "failed"):
                return status
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']!r} after {timeout}s"
                )
            time.sleep(poll_seconds)

    def stream(self, job_id: str, since: int = 0) -> Iterator[dict]:
        """Follow the job's SSE feed; yields event dicts until ``done``.

        A long-lived GET on ``/stream``; each yielded dict is one event from
        the job log (``seq``/``event`` plus the event's own fields). Returns
        when the server sends the terminal ``done`` frame.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=max(self.timeout, 60.0)
        )
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/stream?since={since}")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                decoded = json.loads(raw) if raw else {}
                raise ServerError(response.status, decoded.get("error", {}))
            event_name, data_lines = None, []
            while True:
                line = response.fp.readline()
                if not line:
                    return  # connection closed without a done frame
                text = line.decode("utf-8").rstrip("\n")
                if text.startswith(":"):
                    continue  # keep-alive comment
                if text.startswith("event:"):
                    event_name = text[len("event:"):].strip()
                elif text.startswith("data:"):
                    data_lines.append(text[len("data:"):].strip())
                elif text == "":
                    if event_name == "done":
                        return
                    if data_lines:
                        yield json.loads("\n".join(data_lines))
                    event_name, data_lines = None, []
        finally:
            conn.close()


__all__ = ["SweepClient", "ServerError", "WIRE_VERSION"]
