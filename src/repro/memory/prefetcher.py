"""IP-stride prefetcher with configurable degree (Table I: degree 3).

Classic per-PC stride detection: each load PC trains an entry holding its last
address and last stride; when the same stride is observed twice in a row, the
entry becomes confident and issues ``degree`` prefetches ahead of the demand
stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.common.bitops import mask


@dataclass
class _StrideEntry:
    last_address: int
    stride: int = 0
    confidence: int = 0


@dataclass
class PrefetchStats:
    trainings: int = 0
    issued: int = 0


class IPStridePrefetcher:
    """Per-instruction-pointer stride prefetcher."""

    def __init__(
        self,
        degree: int = 3,
        table_entries: int = 256,
        confidence_threshold: int = 2,
        max_confidence: int = 3,
    ) -> None:
        if degree < 0:
            raise ValueError(f"degree must be >= 0, got {degree}")
        self.degree = degree
        self._table_entries = table_entries
        self._index_mask = mask((table_entries - 1).bit_length())
        self._threshold = confidence_threshold
        self._max_confidence = max_confidence
        self._table: Dict[int, _StrideEntry] = {}
        self.stats = PrefetchStats()

    def _index(self, pc: int) -> int:
        return pc & self._index_mask

    def train(self, pc: int, address: int) -> List[int]:
        """Observe a demand load; return addresses to prefetch (maybe empty)."""
        self.stats.trainings += 1
        index = self._index(pc)
        entry = self._table.get(index)
        if entry is None:
            self._table[index] = _StrideEntry(last_address=address)
            return []

        stride = address - entry.last_address
        if stride == entry.stride and stride != 0:
            entry.confidence = min(self._max_confidence, entry.confidence + 1)
        else:
            entry.confidence = max(0, entry.confidence - 1)
            entry.stride = stride
        entry.last_address = address

        if entry.confidence < self._threshold or entry.stride == 0:
            return []
        prefetches = []
        for distance in range(1, self.degree + 1):
            target = address + stride * distance
            if target >= 0:
                prefetches.append(target)
        self.stats.issued += len(prefetches)
        return prefetches
