"""Memory hierarchy latency model.

The paper models its hierarchy with GEMS/GARNET (Sec. V, Table I); the MDP
study only consumes *load/store completion latencies*, so this package
provides set-associative caches with LRU replacement, MSHR-limited miss
handling, an IP-stride L1D prefetcher with degree 3, and a fixed-latency
DRAM — the Table I configuration.
"""

from repro.memory.cache import Cache, CacheConfig
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy
from repro.memory.prefetcher import IPStridePrefetcher

__all__ = [
    "Cache",
    "CacheConfig",
    "HierarchyConfig",
    "MemoryHierarchy",
    "IPStridePrefetcher",
]
