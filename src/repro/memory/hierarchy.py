"""Three-level cache hierarchy plus DRAM, per Table I.

``load_access`` / ``store_access`` return the cycle at which the access
completes, walking L1D -> L2 -> L3 -> memory with MSHR constraints at each
level and filling lines on the way back. The IP-stride prefetcher trains on
demand loads and installs prefetched lines into L1D with the latency of the
level that provided them.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional

from repro.memory.cache import Cache, CacheConfig
from repro.memory.prefetcher import IPStridePrefetcher


@dataclass(frozen=True)
class HierarchyConfig:
    """Cache/DRAM parameters. Defaults reproduce Table I (Alder Lake-like)."""

    l1i: CacheConfig = CacheConfig(
        name="L1I", size_bytes=32 * 1024, ways=8, hit_latency=4, mshrs=64
    )
    l1d: CacheConfig = CacheConfig(
        name="L1D", size_bytes=48 * 1024, ways=12, hit_latency=5, mshrs=64
    )
    l2: CacheConfig = CacheConfig(
        name="L2", size_bytes=1280 * 1024, ways=10, hit_latency=14, mshrs=64
    )
    l3: CacheConfig = CacheConfig(
        name="L3", size_bytes=12 * 1024 * 1024, ways=12, hit_latency=36, mshrs=64
    )
    memory_latency: int = 100
    prefetch_degree: int = 3

    @staticmethod
    def nehalem_like() -> "HierarchyConfig":
        """Circa-2008 hierarchy for the generation study (Fig. 2)."""
        return HierarchyConfig(
            l1i=CacheConfig(
                name="L1I", size_bytes=32 * 1024, ways=4, hit_latency=3, mshrs=16
            ),
            l1d=CacheConfig(
                name="L1D", size_bytes=32 * 1024, ways=8, hit_latency=4, mshrs=16
            ),
            l2=CacheConfig(
                name="L2", size_bytes=256 * 1024, ways=8, hit_latency=10, mshrs=32
            ),
            l3=CacheConfig(
                name="L3", size_bytes=8 * 1024 * 1024, ways=16, hit_latency=35, mshrs=32
            ),
            memory_latency=120,
            prefetch_degree=2,
        )


@dataclass
class HierarchyStats:
    loads: int = 0
    stores: int = 0
    prefetches: int = 0


class MemoryHierarchy:
    """L1D + L2 + L3 + fixed-latency DRAM with write-allocate stores."""

    def __init__(self, config: Optional[HierarchyConfig] = None) -> None:
        self.config = config or HierarchyConfig()
        self.l1i = Cache(self.config.l1i)
        self.l1d = Cache(self.config.l1d)
        self.l2 = Cache(self.config.l2)
        self.l3 = Cache(self.config.l3)
        self.prefetcher = IPStridePrefetcher(degree=self.config.prefetch_degree)
        self.stats = HierarchyStats()
        self._levels = (self.l1d, self.l2, self.l3)

    @property
    def levels(self) -> List[Cache]:
        return [self.l1d, self.l2, self.l3]

    def reset_transients(self) -> None:
        """Clear cycle-stamped transients (MSHRs) at every level.

        Called on checkpoint restore: the restored run starts its clock at 0,
        so outstanding-fill completion cycles from the donor timeline must
        not survive. Tags, LRU, prefetcher training and statistics do.
        """
        for cache in (self.l1i, self.l1d, self.l2, self.l3):
            cache.reset_transients()

    def checkpoint_digest(self) -> int:
        """Combined per-level digest (see ``Cache.checkpoint_digest``)."""
        digest = 0
        for cache in (self.l1i, self.l1d, self.l2, self.l3):
            digest = zlib.crc32(
                cache.checkpoint_digest().to_bytes(4, "little"), digest
            )
        blob = f"{self.stats.loads}:{self.stats.stores}:{self.stats.prefetches}"
        return zlib.crc32(blob.encode("ascii"), digest)

    def fetch_access(self, pc: int, cycle: int) -> int:
        """Instruction fetch: L1I backed by the shared L2/L3.

        Returns the cycle at which the fetch line is available. L1I hits are
        free in the model (the hit latency is part of the front-end depth);
        only misses delay dispatch.
        """
        hit, _ = self.l1i.lookup(pc, cycle)
        if hit:
            return cycle
        line = self.l1i.line_address(pc)
        start, merged = self.l1i.miss_start_cycle(line, cycle)
        if merged is not None:
            return merged
        # Instruction misses refill from the shared L2/L3 (not the L1D).
        ready = start + self.config.l1i.hit_latency
        for cache in (self.l2, self.l3):
            level_hit, level_ready = cache.lookup(pc, ready)
            if level_hit:
                ready = level_ready
                break
            ready += cache._hit_latency
            cache.fill(pc)
        else:
            ready += self.config.memory_latency
        self.l1i.register_fill(line, ready)
        self.l1i.fill(pc)
        return ready

    def _access(self, address: int, cycle: int) -> int:
        """Walk the hierarchy; return data-ready cycle, filling on the way back."""
        levels = self._levels
        missed: List[Cache] = []
        ready = cycle
        for cache in levels:
            hit, hit_ready = cache.lookup(address, ready)
            if hit:
                ready = hit_ready
                break
            line = cache.line_address(address)
            start, merged_ready = cache.miss_start_cycle(line, ready)
            if merged_ready is not None:
                # Another request already fetching this line: ride along.
                ready = max(merged_ready, ready + cache._hit_latency)
                break
            missed.append(cache)
            ready = start + cache._hit_latency  # tag-check before descending
        else:
            ready += self.config.memory_latency

        # Fill missed levels top-down and register the in-flight window.
        for cache in missed:
            cache.register_fill(cache.line_address(address), ready)
            cache.fill(address)
        return ready

    def load_access(self, pc: int, address: int, cycle: int) -> int:
        """Demand load; trains the prefetcher. Returns data-ready cycle."""
        self.stats.loads += 1
        ready = self._access(address, cycle)
        for prefetch_address in self.prefetcher.train(pc, address):
            self.prefetch(prefetch_address, cycle)
        return ready

    def store_access(self, address: int, cycle: int) -> int:
        """Store drain from the store buffer (write-allocate, write-back)."""
        self.stats.stores += 1
        return self._access(address, cycle)

    def prefetch(self, address: int, cycle: int) -> None:
        """Install a prefetched line into L1D (and lower levels) if absent."""
        self.stats.prefetches += 1
        if self.l1d.probe(address):
            return
        self.l1d.stats.prefetch_fills += 1
        self._access(address, cycle)
