"""Set-associative cache with LRU replacement and MSHR-limited misses.

This is a *timing filter*: ``access`` maps (address, start_cycle) to the cycle
at which the data is available, updating tag state. Misses are forwarded to
the next level by the :class:`~repro.memory.hierarchy.MemoryHierarchy`; this
class only models its own array and miss-status-holding registers (MSHRs):

* a miss to a line that is already outstanding merges into the existing MSHR
  and completes when that fill returns;
* when all MSHRs are busy the request waits for the earliest MSHR to free,
  modelling the Table I 64-MSHR limit.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.bitops import ceil_log2, is_power_of_two
from repro.common.lru import LRUState


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = 64
    hit_latency: int = 4
    mshrs: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )
        if not is_power_of_two(self.line_bytes):
            raise ValueError(f"{self.name}: line size must be a power of two")
        if self.hit_latency <= 0 or self.mshrs <= 0 or self.ways <= 0:
            raise ValueError(f"{self.name}: latency/mshrs/ways must be positive")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def offset_bits(self) -> int:
        return ceil_log2(self.line_bytes)


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    mshr_merges: int = 0
    mshr_stalls: int = 0
    prefetch_fills: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


@dataclass
class _Set:
    tags: List[Optional[int]]
    lru: LRUState


class Cache:
    """One cache level. See module docstring for the timing contract."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.stats = CacheStats()
        # Address-decomposition constants hoisted out of the config
        # properties: lookup() runs hundreds of thousands of times per
        # simulation and re-deriving log2/set-count per access is measurable.
        self._offset_bits = config.offset_bits
        self._num_sets = config.num_sets
        self._hit_latency = config.hit_latency
        # Sets materialise on first touch: a short simulation visits a small
        # fraction of e.g. an L2's 16K sets, and eager allocation dominated
        # process start-up (it was the single largest cost of spawning a
        # sweep worker). An absent set behaves exactly like an all-invalid one.
        self._sets: Dict[int, _Set] = {}
        # line address -> cycle at which the outstanding fill completes
        self._mshrs: Dict[int, int] = {}

    def _get_set(self, index: int) -> _Set:
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = _Set(
                tags=[None] * self.config.ways, lru=LRUState(self.config.ways)
            )
            self._sets[index] = cache_set
        return cache_set

    # -- address decomposition ------------------------------------------------

    def line_address(self, address: int) -> int:
        return address >> self._offset_bits

    def _set_index(self, line: int) -> int:
        return line % self._num_sets

    # -- tag array -------------------------------------------------------------

    def probe(self, address: int) -> bool:
        """Tag check without any state change."""
        line = self.line_address(address)
        cache_set = self._sets.get(self._set_index(line))
        return cache_set is not None and line in cache_set.tags

    def _touch(self, line: int) -> bool:
        """Look up ``line``; on hit promote LRU and return True."""
        cache_set = self._sets.get(self._set_index(line))
        if cache_set is None:
            return False
        try:
            way = cache_set.tags.index(line)
        except ValueError:
            return False
        cache_set.lru.touch(way)
        return True

    def fill(self, address: int) -> None:
        """Install the line holding ``address``, evicting the LRU way."""
        line = self.line_address(address)
        cache_set = self._get_set(self._set_index(line))
        if line in cache_set.tags:
            cache_set.lru.touch(cache_set.tags.index(line))
            return
        victim_way = cache_set.lru.victim()
        cache_set.tags[victim_way] = line
        cache_set.lru.touch(victim_way)

    # -- MSHR handling ----------------------------------------------------------

    def _prune_mshrs(self, cycle: int) -> None:
        done = [line for line, ready in self._mshrs.items() if ready <= cycle]
        for line in done:
            del self._mshrs[line]

    def miss_start_cycle(self, line: int, cycle: int) -> Tuple[int, Optional[int]]:
        """Resolve MSHR constraints for a miss beginning at ``cycle``.

        Returns ``(start_cycle, merged_ready)``: if the line already has an
        outstanding fill, ``merged_ready`` is its completion cycle and no new
        request is needed. Otherwise ``start_cycle`` is when a free MSHR can
        accept the request.
        """
        self._prune_mshrs(cycle)
        if line in self._mshrs:
            self.stats.mshr_merges += 1
            return cycle, self._mshrs[line]
        if len(self._mshrs) >= self.config.mshrs:
            self.stats.mshr_stalls += 1
            earliest = min(self._mshrs.values())
            return max(cycle, earliest), None
        return cycle, None

    def register_fill(self, line: int, ready_cycle: int) -> None:
        """Record an in-flight fill for MSHR merging."""
        self._mshrs[line] = ready_cycle

    def reset_transients(self) -> None:
        """Drop cycle-stamped transient state (outstanding MSHR fills).

        Checkpoint restore rebases the clock to 0; an MSHR entry carrying a
        fill-completion cycle from the donor run's timeline would otherwise
        block its line far into the restored run. Tag/LRU state — the part
        worth warming — is untouched.
        """
        self._mshrs.clear()

    def checkpoint_digest(self) -> int:
        """Cheap semantic digest of the array state (restore self-check).

        Covers the populated set count, the live tag population and the
        access counters — enough to catch a checkpoint codec that silently
        drops or miswires a level, without hashing every tag.
        """
        tags = sum(
            1
            for cache_set in self._sets.values()
            for tag in cache_set.tags
            if tag is not None
        )
        blob = (
            f"{self.config.name}:{len(self._sets)}:{tags}:"
            f"{self.stats.accesses}:{self.stats.hits}:{self.stats.misses}"
        )
        return zlib.crc32(blob.encode("ascii"))

    # -- the main timing entry point ---------------------------------------------

    def lookup(self, address: int, cycle: int) -> Tuple[bool, int]:
        """Tag-check ``address`` at ``cycle``.

        Returns ``(hit, data_ready_cycle_if_hit)``. Misses are orchestrated by
        the hierarchy, which calls :meth:`miss_start_cycle`,
        :meth:`register_fill` and :meth:`fill`.
        """
        self.stats.accesses += 1
        line = address >> self._offset_bits
        cache_set = self._sets.get(line % self._num_sets)
        if cache_set is not None:
            try:
                way = cache_set.tags.index(line)
            except ValueError:
                way = -1
            if way >= 0:
                cache_set.lru.touch(way)
                self.stats.hits += 1
                return True, cycle + self._hit_latency
        self.stats.misses += 1
        return False, cycle
