"""Result export: SimResult / grid sweeps to plain dicts and JSON.

Lets downstream tooling (plotting scripts, CI dashboards, the paper-diffing
workflow in EXPERIMENTS.md) consume reproduction results without importing
the simulator.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, IO, Iterable, List, Optional, Union

from repro.common.atomicio import atomic_write_text
from repro.sim.metrics import SimResult


def result_to_dict(result: SimResult) -> Dict[str, object]:
    """Flatten one simulation result into a JSON-safe dict."""
    return result.to_record()


def record_to_result(record: Dict[str, object]) -> SimResult:
    """Inverse of :func:`result_to_dict` (derived metrics are recomputed)."""
    return SimResult.from_record(record)


def results_to_records(results: Iterable[SimResult]) -> List[Dict[str, object]]:
    """Many results -> list of flat records (one per simulation)."""
    return [result_to_dict(result) for result in results]


def dump_results(
    results: Iterable[SimResult],
    destination: Union[str, Path, IO[str]],
    indent: Optional[int] = 2,
) -> None:
    """Write results as a JSON array to a path or stream.

    Path destinations are written atomically (temp file + rename), so an
    interrupted export never leaves a truncated JSON file behind.
    """
    records = results_to_records(results)
    if isinstance(destination, (str, Path)):
        atomic_write_text(destination, json.dumps(records, indent=indent) + "\n")
        return
    json.dump(records, destination, indent=indent)
    destination.write("\n")


def load_records(source: Union[str, Path, IO[str]]) -> List[Dict[str, object]]:
    """Read back a JSON array written by :func:`dump_results`."""
    own = isinstance(source, (str, Path))
    stream: IO[str] = open(source) if own else source
    try:
        records = json.load(stream)
    finally:
        if own:
            stream.close()
    if not isinstance(records, list):
        raise ValueError("expected a JSON array of result records")
    return records


def records_to_csv(records: List[Dict[str, object]]) -> str:
    """Flat-field CSV rendering (top-level scalar fields only)."""
    if not records:
        raise ValueError("no records to render")
    scalar_fields = [
        key
        for key, value in records[0].items()
        if not isinstance(value, dict)
    ]
    lines = [",".join(scalar_fields)]
    for record in records:
        cells = []
        for field in scalar_fields:
            value = record.get(field)
            cells.append("" if value is None else str(value))
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


def intervals_to_records(result: SimResult) -> List[Dict[str, object]]:
    """One flat record per interval window, tagged with the run's identity.

    Requires a result produced with interval metrics enabled
    (``simulate(RunSpec(..., interval_ops=N))`` or ``repro probe``); raises
    ``ValueError`` otherwise so a missing probe doesn't silently export
    nothing.
    """
    if result.intervals is None:
        raise ValueError(
            f"{result.workload}/{result.predictor} carries no interval metrics; "
            "run with interval_ops set "
            "(e.g. simulate(RunSpec(..., interval_ops=2000)))"
        )
    records = []
    for window in result.intervals:
        record: Dict[str, object] = {
            "workload": result.workload,
            "predictor": result.predictor,
            "core": result.core,
        }
        record.update(window.to_dict())
        records.append(record)
    return records


def intervals_to_csv(results: Iterable[SimResult]) -> str:
    """Per-interval CSV across one or more results (plotting-ready)."""
    records: List[Dict[str, object]] = []
    for result in results:
        records.extend(intervals_to_records(result))
    return records_to_csv(records)


#: Schema of one provenance record (see :func:`provenance_record`).
PROVENANCE_SCHEMA = 1


def provenance_record(spec, result: SimResult) -> Dict[str, object]:
    """One result with everything the surrogate dataset builder needs.

    Carries the cell's content digest, the full RunSpec wire dict (exact
    CoreConfig included — store entries only keep its fingerprint), the
    workload generator version, and the complete result record with any
    interval windows. A dataset built from these records featurizes
    identically to one built from the originating store, which is what
    makes exported JSON a faithful substitute for store access.
    """
    from repro.api.wire import spec_to_wire
    from repro.workloads.generator import GENERATOR_VERSION

    key = spec.key()
    return {
        "schema": PROVENANCE_SCHEMA,
        "digest": key.digest,
        "cell": dict(key.describe),
        "spec": spec_to_wire(spec),
        "generator_version": GENERATOR_VERSION,
        "result": result.to_record(),
    }


def dump_provenance(
    pairs: Iterable[tuple],
    destination: Union[str, Path, IO[str]],
    indent: Optional[int] = 2,
) -> None:
    """Write (spec, result) pairs as a provenance JSON array.

    Same atomic-write guarantee as :func:`dump_results`; the output feeds
    ``repro surrogate build --provenance`` and
    :func:`repro.surrogate.dataset.records_from_provenance`.
    """
    records = [provenance_record(spec, result) for spec, result in pairs]
    if isinstance(destination, (str, Path)):
        atomic_write_text(destination, json.dumps(records, indent=indent) + "\n")
        return
    json.dump(records, destination, indent=indent)
    destination.write("\n")


def load_provenance(
    source: Union[str, Path, IO[str]],
) -> List[Dict[str, object]]:
    """Read back a provenance array written by :func:`dump_provenance`."""
    records = load_records(source)
    for record in records:
        if not isinstance(record, dict) or record.get("schema") != PROVENANCE_SCHEMA:
            raise ValueError(
                "not a provenance export (expected records with "
                f"schema={PROVENANCE_SCHEMA}); did you mean a plain "
                "results export?"
            )
    return records
