"""Computation behind every figure and table of the paper.

Each function takes an :class:`~repro.sim.experiment.ExperimentGrid` (which
memoises simulations, so figures sharing cells — e.g. the ideal baseline —
are cheap after the first) plus the workload list, and returns plain data
structures the benchmark harness formats and asserts on.

Figure index (paper -> function):

* Fig. 1  -> :func:`fig01_mpki_history`
* Fig. 2  -> :func:`fig02_generations`
* Fig. 4  -> :func:`fig04_multi_store`
* Fig. 6  -> :func:`fig06_unlimited_sweep`
* Fig. 7/8/9 -> :func:`fig07_09_unlimited_phast`
* Fig. 10 -> :func:`fig10_conflict_length_histogram`
* Fig. 11 -> :func:`fig11_max_history`
* Fig. 12 -> :func:`fig12_forwarding_filter`
* Fig. 13 -> :func:`fig13_storage_tradeoff`
* Fig. 14/15 -> :func:`fig14_15_per_application`
* Fig. 16 -> :func:`fig16_energy`
* Table II -> :mod:`repro.mdp.storage`
* headline numbers (Sec. VI-C) -> :func:`headline_summary`
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.stats import Histogram, geometric_mean
from repro.core.config import GENERATIONS, CoreConfig
from repro.frontend.branch_predictors import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    BranchPredictor,
    CombiningPredictor,
    GSharePredictor,
    PerceptronPredictor,
    TwoLevelLocalPredictor,
)
from repro.frontend.tage import TAGEPredictor
from repro.isa.trace import Trace
from repro.mdp.base import MDPredictor
from repro.mdp.energy import EnergyModel
from repro.mdp.mdp_tage import MDPTagePredictor
from repro.mdp.nosq import NoSQPredictor
from repro.mdp.phast import PHASTPredictor
from repro.mdp.store_sets import StoreSetsPredictor
from repro.mdp.unlimited import (
    UnlimitedMDPTagePredictor,
    UnlimitedNoSQPredictor,
    UnlimitedPHASTPredictor,
)
from repro.sim.experiment import ExperimentGrid
from repro.sim.simulator import get_trace

#: The five limited predictors of the main evaluation (Figs. 13-16).
MAIN_PREDICTORS: Tuple[str, ...] = (
    "store-sets",
    "nosq",
    "mdp-tage",
    "mdp-tage-s",
    "phast",
)

#: The historical roster of branch predictors for Fig. 1's gray circles.
BRANCH_PREDICTOR_ROSTER: Tuple[Callable[[], BranchPredictor], ...] = (
    AlwaysTakenPredictor,
    BimodalPredictor,
    TwoLevelLocalPredictor,
    GSharePredictor,
    CombiningPredictor,
    PerceptronPredictor,
    TAGEPredictor,
)


# --------------------------------------------------------------------------- #
# Fig. 1 — 30 years of MPKI
# --------------------------------------------------------------------------- #


def standalone_branch_mpki(predictor: BranchPredictor, trace: Trace) -> float:
    """Branch MPKI of a predictor replayed over a trace's branch stream."""
    mispredicts = 0
    for op in trace:
        if op.is_branch:
            branch = op.branch
            if predictor.observe(op.pc, branch.kind, branch.taken, branch.target):
                mispredicts += 1
    return mispredicts * 1000.0 / len(trace)


@dataclass(frozen=True)
class Fig01Point:
    name: str
    year: int
    kind: str  # "branch" or "mdp"
    mpki: float  # direction/violation MPKI
    false_dep_mpki: float = 0.0  # MDP only (the dotted green extension)


def fig01_mpki_history(
    grid: ExperimentGrid, workloads: Sequence[str]
) -> List[Fig01Point]:
    """Fig. 1: branch- and memory-dependence-predictor MPKI over the years.

    Branch predictors replay the suite's branch streams standalone; memory
    dependence predictors run in the Nehalem-like pipeline (the paper reports
    MDP MPKI on a Nehalem-like core for this figure).
    """
    points: List[Fig01Point] = []
    for factory in BRANCH_PREDICTOR_ROSTER:
        mpkis = []
        for name in workloads:
            trace = get_trace(name, grid.num_ops)
            mpkis.append(standalone_branch_mpki(factory(), trace))
        sample = factory()
        points.append(
            Fig01Point(
                name=sample.name,
                year=sample.year,
                kind="branch",
                mpki=sum(mpkis) / len(mpkis),
            )
        )
    mdp_years = {
        "store-sets": 1998,
        "cht": 1999,
        "store-vector": 2006,
        "nosq": 2006,
        "mdp-tage": 2018,
        "phast": 2024,
    }
    nehalem = GENERATIONS["nehalem"]
    for predictor, year in mdp_years.items():
        violations, false_deps = grid.mean_mpki(list(workloads), predictor, nehalem)
        points.append(
            Fig01Point(
                name=predictor,
                year=year,
                kind="mdp",
                mpki=violations,
                false_dep_mpki=false_deps,
            )
        )
    return points


# --------------------------------------------------------------------------- #
# Fig. 2 — processor generations
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Fig02Row:
    generation: str
    year: int
    predictor: str
    violation_mpki: float
    false_dep_mpki: float
    gap_vs_ideal_percent: float


def fig02_generations(
    grid: ExperimentGrid,
    workloads: Sequence[str],
    predictors: Sequence[str] = ("store-sets", "nosq", "mdp-tage", "phast"),
) -> List[Fig02Row]:
    """Fig. 2: MDP MPKI (a) and gap to ideal (b) across core generations."""
    rows: List[Fig02Row] = []
    for gen_name, config in GENERATIONS.items():
        for predictor in predictors:
            violations, false_deps = grid.mean_mpki(list(workloads), predictor, config)
            normalized = grid.mean_normalized_ipc(list(workloads), predictor, config)
            rows.append(
                Fig02Row(
                    generation=gen_name,
                    year=config.year,
                    predictor=predictor,
                    violation_mpki=violations,
                    false_dep_mpki=false_deps,
                    gap_vs_ideal_percent=(1.0 - normalized) * 100.0,
                )
            )
    return rows


# --------------------------------------------------------------------------- #
# Fig. 4 — loads depending on multiple stores
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Fig04Row:
    workload: str
    multi_store_percent: float  # of executed loads
    in_order_percent: float  # of multi-store loads whose writers ran in order


def fig04_multi_store(
    grid: ExperimentGrid, workloads: Sequence[str]
) -> List[Fig04Row]:
    """Fig. 4: percentage of loads that depend on multiple stores."""
    rows: List[Fig04Row] = []
    for name in workloads:
        result = grid.run(name, "ideal")
        stats = result.pipeline
        multi = stats.multi_store_loads
        rows.append(
            Fig04Row(
                workload=name,
                multi_store_percent=100.0 * multi / max(1, stats.loads),
                in_order_percent=100.0 * stats.multi_store_inorder / max(1, multi),
            )
        )
    return rows


# --------------------------------------------------------------------------- #
# Fig. 6 — unlimited predictor study
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Fig06Point:
    label: str
    normalized_ipc: float
    mean_paths: float


def fig06_unlimited_sweep(
    grid: ExperimentGrid,
    workloads: Sequence[str],
    nosq_lengths: Sequence[int] = (1, 2, 4, 6, 8, 12, 16),
) -> List[Fig06Point]:
    """Fig. 6: UnlimitedNoSQ history sweep vs UnlimitedMDPTAGE vs UnlimitedPHAST."""
    points: List[Fig06Point] = []

    def run_variant(label: str, factory: Callable[[], MDPredictor]) -> None:
        results = grid.run_suite(workloads, label, predictor_factory=factory)
        ideal = grid.run_suite(workloads, "ideal")
        normalized = geometric_mean(
            [results[w].ipc / ideal[w].ipc for w in workloads]
        )
        paths = [results[w].paths_tracked or 0 for w in workloads]
        points.append(Fig06Point(label, normalized, sum(paths) / len(paths)))

    for length in nosq_lengths:
        run_variant(
            f"unlimited-nosq-h{length}",
            lambda length=length: UnlimitedNoSQPredictor(history_branches=length),
        )
    run_variant("unlimited-mdp-tage", UnlimitedMDPTagePredictor)
    run_variant("unlimited-phast", UnlimitedPHASTPredictor)
    return points


# --------------------------------------------------------------------------- #
# Figs. 7, 8, 9 — UnlimitedPHAST per application
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class UnlimitedPhastRow:
    workload: str
    normalized_ipc: float  # Fig. 7
    violation_mpki: float  # Fig. 8 (red)
    false_dep_mpki: float  # Fig. 8 (green)
    paths: int  # Fig. 9


def fig07_09_unlimited_phast(
    grid: ExperimentGrid, workloads: Sequence[str]
) -> List[UnlimitedPhastRow]:
    """Figs. 7-9: UnlimitedPHAST IPC, MPKI and path count per application."""
    rows: List[UnlimitedPhastRow] = []
    for name in workloads:
        result = grid.run(name, "unlimited-phast")
        ideal = grid.run(name, "ideal")
        rows.append(
            UnlimitedPhastRow(
                workload=name,
                normalized_ipc=result.ipc / ideal.ipc,
                violation_mpki=result.violation_mpki,
                false_dep_mpki=result.false_positive_mpki,
                paths=result.paths_tracked or 0,
            )
        )
    return rows


# --------------------------------------------------------------------------- #
# Fig. 10 — conflicts per history length
# --------------------------------------------------------------------------- #


def fig10_conflict_length_histogram(
    workloads: Sequence[str], num_ops: int
) -> Histogram:
    """Fig. 10: unique conflicts per required history length (suite-wide).

    Runs UnlimitedPHAST (which records the exact N+1 of every unique conflict
    before clamping) and merges the per-application histograms.
    """
    from repro.sim.simulator import simulate
    from repro.sim.spec import RunSpec

    merged = Histogram()
    for name in workloads:
        predictor = UnlimitedPHASTPredictor()
        simulate(RunSpec(workload=name, predictor=predictor, num_ops=num_ops))
        merged.merge(predictor.conflict_length_histogram)
    return merged


# --------------------------------------------------------------------------- #
# Fig. 11 — max history length clamp
# --------------------------------------------------------------------------- #


def fig11_max_history(
    grid: ExperimentGrid,
    workloads: Sequence[str],
    clamps: Sequence[Optional[int]] = (4, 8, 16, 32, 64, None),
) -> Dict[str, float]:
    """Fig. 11: UnlimitedPHAST IPC at several maximum history lengths."""
    ideal = grid.run_suite(workloads, "ideal")
    series: Dict[str, float] = {}
    for clamp in clamps:
        label = f"unlimited-phast-max{clamp if clamp is not None else 'inf'}"
        results = grid.run_suite(
            workloads,
            label,
            predictor_factory=lambda clamp=clamp: UnlimitedPHASTPredictor(
                max_history=clamp
            ),
        )
        series[label] = geometric_mean(
            [results[w].ipc / ideal[w].ipc for w in workloads]
        )
    return series


# --------------------------------------------------------------------------- #
# Fig. 12 — forwarding filter
# --------------------------------------------------------------------------- #


def fig12_forwarding_filter(
    grid: ExperimentGrid,
    workloads: Sequence[str],
    predictors: Sequence[str] = ("store-sets", "nosq", "mdp-tage", "phast"),
) -> Dict[str, Dict[str, float]]:
    """Fig. 12: normalised IPC with and without the Sec. IV-A1 FWD filter.

    Both modes are normalised to the FWD-on ideal predictor, as in the paper.
    """
    from repro.mdp.ideal import IdealPredictor

    base_config = CoreConfig()
    nofwd_config = base_config.with_forwarding_filter(False)
    ideal = grid.run_suite(workloads, "ideal", base_config)
    series: Dict[str, Dict[str, float]] = {}
    for predictor in predictors:
        fwd = grid.run_suite(workloads, predictor, base_config)
        nofwd = grid.run_suite(workloads, predictor, nofwd_config)
        series[predictor] = {
            "fwd": geometric_mean([fwd[w].ipc / ideal[w].ipc for w in workloads]),
            "nofwd": geometric_mean([nofwd[w].ipc / ideal[w].ipc for w in workloads]),
        }
    # The ideal predictor itself, without the filter (strictness relaxed).
    nofwd_ideal = grid.run_suite(
        workloads,
        "ideal-nofwd",
        nofwd_config,
        predictor_factory=lambda: IdealPredictor(strict=False),
    )
    series["ideal"] = {
        "fwd": 1.0,
        "nofwd": geometric_mean(
            [nofwd_ideal[w].ipc / ideal[w].ipc for w in workloads]
        ),
    }
    return series


# --------------------------------------------------------------------------- #
# Fig. 13 — performance versus storage
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Fig13Point:
    predictor: str
    storage_kb: float
    normalized_ipc: float


def fig13_storage_tradeoff(
    grid: ExperimentGrid,
    workloads: Sequence[str],
    factors: Sequence[float] = (0.5, 1.0, 2.0),
) -> List[Fig13Point]:
    """Fig. 13: geometric-mean IPC vs storage for size-scaled predictors."""
    scaled_factories: Dict[str, Callable[[float], MDPredictor]] = {
        "store-sets": StoreSetsPredictor.scaled,
        "nosq": NoSQPredictor.scaled,
        "mdp-tage": MDPTagePredictor.scaled,
        "mdp-tage-s": lambda f: MDPTagePredictor.tage_s(
            total_entries=max(64, int(4096 * f))
        ),
        "phast": PHASTPredictor.scaled,
    }
    points: List[Fig13Point] = []
    for name, scaled in scaled_factories.items():
        for factor in factors:
            sample = scaled(factor)
            label = f"{name}-x{factor:g}"
            normalized = grid.mean_normalized_ipc(
                list(workloads),
                label,
                predictor_factory=lambda scaled=scaled, factor=factor: scaled(factor),
            )
            points.append(Fig13Point(name, sample.storage_kb(), normalized))
    return points


# --------------------------------------------------------------------------- #
# Figs. 14 & 15 — per-application MPKI and IPC
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class PerAppRow:
    workload: str
    predictor: str
    violation_mpki: float
    false_dep_mpki: float
    normalized_ipc: float


def fig14_15_per_application(
    grid: ExperimentGrid,
    workloads: Sequence[str],
    predictors: Sequence[str] = MAIN_PREDICTORS,
) -> List[PerAppRow]:
    """Figs. 14/15: per-application MPKI and ideal-normalised IPC."""
    rows: List[PerAppRow] = []
    ideal = grid.run_suite(workloads, "ideal")
    for predictor in predictors:
        results = grid.run_suite(workloads, predictor)
        for name in workloads:
            result = results[name]
            rows.append(
                PerAppRow(
                    workload=name,
                    predictor=predictor,
                    violation_mpki=result.violation_mpki,
                    false_dep_mpki=result.false_positive_mpki,
                    normalized_ipc=result.ipc / ideal[name].ipc,
                )
            )
    return rows


# --------------------------------------------------------------------------- #
# Fig. 16 — energy
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Fig16Row:
    predictor: str
    read_nj: float
    write_nj: float

    @property
    def total_nj(self) -> float:
        return self.read_nj + self.write_nj


def fig16_energy(
    grid: ExperimentGrid,
    workloads: Sequence[str],
    predictors: Sequence[str] = MAIN_PREDICTORS,
) -> List[Fig16Row]:
    """Fig. 16: predictor energy (reads/writes) over the suite."""
    model = EnergyModel.calibrated()
    rows: List[Fig16Row] = []
    for predictor in predictors:
        reads = writes = 0
        for name in workloads:
            result = grid.run(name, predictor)
            reads += result.mdp.table_reads
            writes += result.mdp.table_writes
        read_nj, write_nj = model.total_energy_nj(predictor, reads, writes)
        rows.append(Fig16Row(predictor, read_nj, write_nj))
    return rows


# --------------------------------------------------------------------------- #
# Headline numbers (abstract / Sec. VI-C)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class HeadlineSummary:
    phast_gap_percent: float  # paper: 1.50
    unlimited_phast_gap_percent: float  # paper: 0.47
    speedup_vs_store_sets: float  # paper: 5.05
    speedup_vs_nosq: float  # paper: 1.29
    speedup_vs_mdp_tage: float  # paper: 3.04
    speedup_vs_mdp_tage_s: float  # paper: 2.10
    phast_total_mpki: float  # paper: 0.766
    mpki_reduction_vs_nosq_percent: float  # paper: 62.0


def headline_summary(
    grid: ExperimentGrid, workloads: Sequence[str]
) -> HeadlineSummary:
    """The abstract's quantitative claims, measured on this reproduction."""
    names = list(workloads)
    normalized = {
        predictor: grid.mean_normalized_ipc(names, predictor)
        for predictor in MAIN_PREDICTORS
    }
    normalized["unlimited-phast"] = grid.mean_normalized_ipc(names, "unlimited-phast")
    phast = normalized["phast"]

    def speedup(baseline: str) -> float:
        return (phast / normalized[baseline] - 1.0) * 100.0

    phast_viol, phast_fp = grid.mean_mpki(names, "phast")
    nosq_viol, nosq_fp = grid.mean_mpki(names, "nosq")
    phast_total = phast_viol + phast_fp
    nosq_total = nosq_viol + nosq_fp
    return HeadlineSummary(
        phast_gap_percent=(1.0 - phast) * 100.0,
        unlimited_phast_gap_percent=(1.0 - normalized["unlimited-phast"]) * 100.0,
        speedup_vs_store_sets=speedup("store-sets"),
        speedup_vs_nosq=speedup("nosq"),
        speedup_vs_mdp_tage=speedup("mdp-tage"),
        speedup_vs_mdp_tage_s=speedup("mdp-tage-s"),
        phast_total_mpki=phast_total,
        mpki_reduction_vs_nosq_percent=(1.0 - phast_total / nosq_total) * 100.0
        if nosq_total > 0
        else 0.0,
    )
