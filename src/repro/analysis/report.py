"""Plain-text table rendering for figure/table reproductions."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _render(cell: Cell, precision: int) -> str:
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
    precision: int = 3,
) -> str:
    """Render an aligned text table (first column left, rest right aligned)."""
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        rendered.append([_render(cell, precision) for cell in row])
    widths = [
        max(len(line[column]) for line in rendered) for column in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    for index, line in enumerate(rendered):
        parts = [line[0].ljust(widths[0])]
        parts.extend(cell.rjust(width) for cell, width in zip(line[1:], widths[1:]))
        lines.append("  ".join(parts))
        if index == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)
