"""ASCII charts: dependency-free bar charts and sparklines for the figures.

The benchmark harness prints tables; these helpers add a visual layer for
the examples and for quick terminal inspection — a horizontal bar chart for
per-application figures (Figs. 7, 9, 14-16) and a sparkline for sweeps
(Figs. 6, 11, 13).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def bar_chart(
    items: Sequence[Tuple[str, float]],
    width: int = 50,
    title: str = "",
    max_value: Optional[float] = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart; bars scale to the largest value (or max_value)."""
    if not items:
        raise ValueError("bar_chart needs at least one item")
    values = [value for _, value in items]
    if any(value < 0 for value in values):
        raise ValueError("bar_chart values must be non-negative")
    top = max_value if max_value is not None else max(values)
    if top <= 0:
        top = 1.0
    label_width = max(len(label) for label, _ in items)
    lines: List[str] = [title] if title else []
    for label, value in items:
        filled = int(round(width * min(value, top) / top))
        bar = "█" * filled + "·" * (width - filled)
        lines.append(f"{label.ljust(label_width)} |{bar}| {value:.3f}{unit}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of a numeric series."""
    if not values:
        raise ValueError("sparkline needs at least one value")
    low = min(values)
    high = max(values)
    span = high - low
    if span == 0:
        return _SPARK_LEVELS[0] * len(values)
    chars = []
    for value in values:
        level = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def grouped_bar_chart(
    groups: Dict[str, Dict[str, float]],
    width: int = 40,
    title: str = "",
) -> str:
    """Several labelled series per group (e.g. predictors per workload)."""
    if not groups:
        raise ValueError("grouped_bar_chart needs at least one group")
    top = max(
        (value for series in groups.values() for value in series.values()),
        default=1.0,
    )
    if top <= 0:
        top = 1.0
    series_width = max(
        len(name) for series in groups.values() for name in series
    )
    lines: List[str] = [title] if title else []
    for group, series in groups.items():
        lines.append(f"{group}:")
        for name, value in series.items():
            filled = int(round(width * min(value, top) / top))
            bar = "█" * filled + "·" * (width - filled)
            lines.append(f"  {name.ljust(series_width)} |{bar}| {value:.3f}")
    return "\n".join(lines)
