"""Result analysis: figure/table computation and plain-text rendering.

Each ``figNN_*`` function in :mod:`repro.analysis.figures` computes the data
behind one figure of the paper from an :class:`~repro.sim.experiment.ExperimentGrid`,
and :mod:`repro.analysis.report` renders aligned text tables — the benchmark
harness prints exactly these.
"""

from repro.analysis.report import format_table
from repro.analysis import figures

__all__ = ["format_table", "figures"]
