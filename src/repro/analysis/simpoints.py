"""SimPoint-style interval selection (Perelman et al., cited in Sec. V).

The paper simulates SimPoint-selected 100M-instruction intervals instead of
whole SPEC runs. This module implements the same methodology over our
traces:

1. split a trace into fixed-size intervals;
2. summarise each interval as a normalised *basic-block vector* (here: a
   hashed program-counter execution-frequency vector — our micro-op traces
   have no explicit basic blocks, and PC frequency captures the same phase
   signal);
3. cluster the vectors with k-means (numpy);
4. pick each cluster's most central interval as its simulation point,
   weighted by the cluster's share of the trace.

``simulate_simpoints`` then runs only the representatives (with optional
per-interval warm-up) and returns the weighted IPC — the standard trade of
simulation time for a small, quantified phase-sampling error.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import CoreConfig
from repro.isa.artifacts import TraceStore
from repro.isa.trace import Trace
from repro.mdp.base import MDPredictor
from repro.sim.simulator import build_pipeline, get_trace
from repro.sim.spec import RunSpec
from repro.workloads.generator import WorkloadProfile

#: Dimensionality of the hashed PC-frequency vectors.
VECTOR_BUCKETS = 256


def interval_vectors(trace: Trace, interval_ops: int) -> np.ndarray:
    """One L1-normalised hashed-PC frequency vector per full interval."""
    if interval_ops <= 0:
        raise ValueError(f"interval_ops must be positive, got {interval_ops}")
    num_intervals = len(trace) // interval_ops
    if num_intervals == 0:
        raise ValueError(
            f"trace of {len(trace)} ops has no full {interval_ops}-op interval"
        )
    vectors = np.zeros((num_intervals, VECTOR_BUCKETS), dtype=np.float64)
    for interval in range(num_intervals):
        start = interval * interval_ops
        for position in range(start, start + interval_ops):
            pc = trace[position].pc
            bucket = (pc ^ (pc >> 7) ^ (pc >> 15)) % VECTOR_BUCKETS
            vectors[interval, bucket] += 1.0
    row_sums = vectors.sum(axis=1, keepdims=True)
    return vectors / row_sums


def kmeans(
    vectors: np.ndarray, k: int, iterations: int = 25, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Plain k-means. Returns (assignments, centroids)."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    count = vectors.shape[0]
    k = min(k, count)
    rng = np.random.default_rng(seed)
    centroids = vectors[rng.choice(count, size=k, replace=False)].copy()
    assignments = np.zeros(count, dtype=np.int64)
    for _ in range(iterations):
        distances = np.linalg.norm(
            vectors[:, None, :] - centroids[None, :, :], axis=2
        )
        new_assignments = distances.argmin(axis=1)
        if np.array_equal(new_assignments, assignments):
            break
        assignments = new_assignments
        for cluster in range(k):
            members = vectors[assignments == cluster]
            if len(members):
                centroids[cluster] = members.mean(axis=0)
    return assignments, centroids


@dataclass(frozen=True)
class SimPoint:
    """One representative interval with its cluster weight."""

    interval_index: int
    weight: float


def choose_simpoints(
    trace: Trace, interval_ops: int, max_clusters: int = 5, seed: int = 0
) -> List[SimPoint]:
    """Select representative intervals; weights sum to 1."""
    vectors = interval_vectors(trace, interval_ops)
    assignments, centroids = kmeans(vectors, max_clusters, seed=seed)
    points: List[SimPoint] = []
    total = len(assignments)
    for cluster in range(centroids.shape[0]):
        members = np.flatnonzero(assignments == cluster)
        if len(members) == 0:
            continue
        distances = np.linalg.norm(vectors[members] - centroids[cluster], axis=1)
        representative = int(members[distances.argmin()])
        points.append(
            SimPoint(interval_index=representative, weight=len(members) / total)
        )
    return sorted(points, key=lambda point: point.interval_index)


@dataclass(frozen=True)
class SimPointResult:
    """Weighted-IPC estimate plus per-point detail."""

    weighted_ipc: float
    points: Sequence[SimPoint]
    point_ipcs: Sequence[float]
    simulated_ops: int
    total_ops: int

    @property
    def speedup_factor(self) -> float:
        """How much simulation the sampling saved."""
        return self.total_ops / max(1, self.simulated_ops)


def _point_spec(spec: RunSpec) -> RunSpec:
    """A copy of ``spec`` whose predictor state is fresh for one point.

    String predictors are instantiated per pipeline by the registry anyway;
    an *instance* predictor would otherwise carry training state from one
    representative into the next, which is not the SimPoint methodology
    (each checkpointed interval starts from its own warmed state).
    """
    if isinstance(spec.predictor, str):
        return spec
    return spec.with_overrides(predictor=type(spec.predictor)())


def simulate_simpoints(
    profile: Union[RunSpec, str, WorkloadProfile],
    predictor: Optional[Union[str, MDPredictor]] = None,
    total_ops: Optional[int] = None,
    interval_ops: Optional[int] = None,
    max_clusters: int = 5,
    warmup_fraction: float = 0.2,
    config: Optional[CoreConfig] = None,
    seed: int = 0,
) -> SimPointResult:
    """Estimate IPC from SimPoint representatives instead of the full trace.

    The canonical form takes a :class:`~repro.sim.spec.RunSpec` (workload,
    predictor, core, trace length and trace store all come from the spec)::

        simulate_simpoints(RunSpec("502.gcc", "phast", num_ops=100_000),
                           interval_ops=2_000)

    The legacy form ``simulate_simpoints(profile, predictor, total_ops,
    interval_ops, ...)`` packs its arguments into a spec and behaves
    identically, but it is deprecated and warns with the exact replacement
    call. ``seed`` seeds the k-means clustering in both forms.

    Each representative interval is simulated with a leading warm-up region
    (the previous ``warmup_fraction`` of an interval, when available) whose
    statistics are discarded — mirroring how SimPoint users warm
    microarchitectural state before each checkpoint. For warming from
    functionally-warmed checkpoints instead of cold leads — plus error
    bars and parallel interval fan-out — see ``repro.sampling.run_sampled``.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError(f"warmup_fraction out of range: {warmup_fraction}")
    if isinstance(profile, RunSpec):
        if predictor is not None or config is not None:
            raise TypeError(
                "simulate_simpoints(spec, ...) takes predictor and config "
                "from the spec; use spec.with_overrides(...) to vary them"
            )
        spec = profile
        if total_ops is not None:
            spec = spec.with_overrides(num_ops=total_ops)
        if interval_ops is None:
            interval_ops = spec.interval_ops
        if interval_ops is None:
            raise TypeError("simulate_simpoints() requires interval_ops")
    else:
        if predictor is None or total_ops is None or interval_ops is None:
            raise TypeError(
                "simulate_simpoints() requires predictor, total_ops and "
                "interval_ops (or a RunSpec)"
            )
        name = profile if isinstance(profile, str) else profile.name
        predictor_repr = predictor if isinstance(predictor, str) else "<predictor>"
        warnings.warn(
            "simulate_simpoints(profile, predictor, total_ops, ...) is "
            "deprecated; call simulate_simpoints(RunSpec("
            f"{name!r}, {predictor_repr!r}, num_ops={total_ops}), "
            f"interval_ops={interval_ops}) instead (from repro.api import "
            "RunSpec)",
            DeprecationWarning,
            stacklevel=2,
        )
        spec = RunSpec(
            workload=profile, predictor=predictor, config=config, num_ops=total_ops
        )

    store = TraceStore(spec.trace_dir) if spec.trace_dir else None
    trace = get_trace(spec.resolved_profile(), spec.resolved_num_ops(), store=store)
    points = choose_simpoints(trace, interval_ops, max_clusters, seed=seed)

    point_ipcs: List[float] = []
    simulated = 0
    warmup = int(interval_ops * warmup_fraction)
    for point in points:
        start = point.interval_index * interval_ops
        lead = min(warmup, start)
        window = trace.slice(start - lead, start + interval_ops)
        pipeline, _ = build_pipeline(_point_spec(spec))
        stats = pipeline.run(window, warmup_ops=lead)
        point_ipcs.append(stats.ipc)
        simulated += len(window)

    weighted = sum(point.weight * ipc for point, ipc in zip(points, point_ipcs))
    return SimPointResult(
        weighted_ipc=weighted,
        points=tuple(points),
        point_ipcs=tuple(point_ipcs),
        simulated_ops=simulated,
        total_ops=spec.resolved_num_ops(),
    )
