"""Shared low-level utilities: bit manipulation, counters, LRU, RNG, statistics.

These helpers are deliberately dependency-free so that every hardware model in
the package (predictor tables, caches, queues) builds on the same small,
well-tested vocabulary.
"""

from repro.common.bitops import (
    bit_select,
    fold_bits,
    mask,
    pc_hash_index,
    pc_hash_tag,
    to_signed,
)
from repro.common.counters import SaturatingCounter
from repro.common.env import EnvVarError, env_int
from repro.common.lru import LRUState
from repro.common.rng import DeterministicRNG
from repro.common.stats import Histogram, RunningStat, geometric_mean

__all__ = [
    "bit_select",
    "fold_bits",
    "mask",
    "pc_hash_index",
    "pc_hash_tag",
    "to_signed",
    "SaturatingCounter",
    "EnvVarError",
    "env_int",
    "LRUState",
    "DeterministicRNG",
    "Histogram",
    "RunningStat",
    "geometric_mean",
]
