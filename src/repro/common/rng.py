"""Deterministic pseudo-random number generation.

Simulation components that need randomness (the MDP-TAGE 1/256 reset
probability, workload generation, cache-warmup address jitter) must be
reproducible run-to-run, so they draw from this explicit-state generator
rather than the global :mod:`random` module.

The core is a 64-bit SplitMix64 step, which has excellent statistical
behaviour for its cost and is trivially portable.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


class DeterministicRNG:
    """A seeded SplitMix64 generator with the handful of draws the models need."""

    __slots__ = ("_state",)

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        """Advance the state and return a 64-bit unsigned value."""
        self._state = (self._state + 0x9E3779B97F4A7C15) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        return low + self.next_u64() % span

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def chance(self, probability: float) -> bool:
        """Bernoulli draw; True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        return self.random() < probability

    def one_in(self, n: int) -> bool:
        """True with probability 1/n (e.g. MDP-TAGE's 1/256 reset)."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        return self.next_u64() % n == 0

    def choice(self, items):
        """Pick one element of a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.randint(0, len(items) - 1)]

    def weighted_choice(self, items, weights):
        """Pick an element with probability proportional to its weight."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have equal length")
        total = float(sum(weights))
        if total <= 0.0:
            raise ValueError("weights must sum to a positive value")
        draw = self.random() * total
        cumulative = 0.0
        for item, weight in zip(items, weights):
            if weight < 0:
                raise ValueError("weights must be non-negative")
            cumulative += weight
            if draw < cumulative:
                return item
        return items[-1]

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]

    def fork(self, salt: int) -> "DeterministicRNG":
        """Derive an independent child generator (for per-component streams)."""
        return DeterministicRNG(self.next_u64() ^ (salt * 0x9E3779B97F4A7C15))
