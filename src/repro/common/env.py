"""Validated environment-variable parsing for the repro knobs.

Every integer knob in the package (``REPRO_TRACE_OPS``, ``REPRO_WARMUP_OPS``,
``REPRO_TRACE_CACHE_SIZE``, ``REPRO_HEARTBEAT_OPS``, ``REPRO_BENCH_OPS``,
``REPRO_SAMPLE_INTERVAL_OPS``, ``REPRO_SAMPLE_WARMUP_OPS``, and the sweep
knobs ``REPRO_SWEEP_RETRIES``/``REPRO_SWEEP_WORKERS``) is read through
:func:`env_int` — and the float knob ``REPRO_SWEEP_TIMEOUT`` through
:func:`env_float` — so that a typo such as ``REPRO_TRACE_OPS=10k`` fails fast
with the variable name in the message instead of surfacing as a bare
``ValueError`` deep inside a sweep worker (or, worse, being silently replaced
by a default).

The surrogate subsystem (:mod:`repro.surrogate`, docs/surrogate.md) reads
its whole knob family here too: ``REPRO_SURROGATE`` through
:func:`env_choice` (off/triage/only), the triage thresholds
``REPRO_SURROGATE_MAX_CI_IPC``/``REPRO_SURROGATE_MAX_CI_MPKI`` and the
training knobs ``REPRO_SURROGATE_LEVEL``/``REPRO_SURROGATE_RIDGE`` through
:func:`env_float`, and ``REPRO_SURROGATE_MEMBERS``/``REPRO_SURROGATE_SEED``
through :func:`env_int` (``REPRO_SURROGATE_MODEL`` is a plain path and needs
no parsing).

The sampling pair shapes checkpointed sampled runs (``repro sample``,
:mod:`repro.sampling`): ``REPRO_SAMPLE_INTERVAL_OPS`` is the measured
interval length per SimPoint representative, ``REPRO_SAMPLE_WARMUP_OPS`` the
detailed-warmup lead replayed in front of each interval before measurement
starts. Both are resolved at call time, like every other knob here.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence


class EnvVarError(ValueError):
    """An environment knob is set to an unusable value."""


def env_int(name: str, default: int, min_value: Optional[int] = None) -> int:
    """Read integer knob ``name``, falling back to ``default`` when unset.

    Unlike a bare ``int(os.environ.get(...))``, a set-but-invalid value is a
    hard error naming the variable: silently substituting the default would
    make a mistyped sweep run with the wrong trace length and produce
    plausible-looking but wrong results.

    ``min_value``, when given, is the smallest acceptable value (inclusive);
    the *default* is not range-checked — it is the caller's own constant.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise EnvVarError(f"{name} must be an integer, got {raw!r}") from None
    if min_value is not None and value < min_value:
        raise EnvVarError(f"{name} must be >= {min_value}, got {value}")
    return value


def env_choice(name: str, default: str, choices: Sequence[str]) -> str:
    """Read enumerated knob ``name``, falling back to ``default`` when unset.

    Same contract as :func:`env_int`: a set-but-unknown value is a hard error
    naming the variable and listing the valid choices — ``REPRO_SIM_BACKEND=
    bacth`` must not silently run the reference backend. The *default* is not
    checked against ``choices``; it is the caller's own constant (and the
    choice list may be extended at runtime, e.g. by backend registration).
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    if raw not in choices:
        raise EnvVarError(
            f"{name} must be one of {', '.join(sorted(choices))}; got {raw!r}"
        )
    return raw


def env_float(
    name: str, default: float, min_value: Optional[float] = None
) -> float:
    """Read float knob ``name``, falling back to ``default`` when unset.

    Same contract as :func:`env_int`: a set-but-unparsable value raises
    :class:`EnvVarError` naming the variable, and ``min_value`` (inclusive)
    range-checks the parsed value but never the caller's default. NaN is
    rejected outright — no knob means anything useful as NaN.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise EnvVarError(f"{name} must be a number, got {raw!r}") from None
    if value != value:  # NaN
        raise EnvVarError(f"{name} must be a number, got {raw!r}")
    if min_value is not None and value < min_value:
        raise EnvVarError(f"{name} must be >= {min_value}, got {value}")
    return value
