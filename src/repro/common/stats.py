"""Small statistics helpers shared by the metrics and analysis layers."""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the paper's aggregate for normalised IPC.

    Raises ``ValueError`` on empty input or non-positive entries, which would
    silently corrupt a speedup aggregate otherwise.
    """
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    log_sum = 0.0
    for value in values:
        if value <= 0.0:
            raise ValueError(f"geometric_mean requires positive values, got {value}")
        log_sum += math.log(value)
    return math.exp(log_sum / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("arithmetic_mean of empty sequence")
    return sum(values) / len(values)


def speedup_percent(ipc_new: float, ipc_base: float) -> float:
    """Relative speedup of ``ipc_new`` over ``ipc_base`` in percent."""
    if ipc_base <= 0:
        raise ValueError(f"baseline IPC must be positive, got {ipc_base}")
    return (ipc_new / ipc_base - 1.0) * 100.0


@dataclass
class RunningStat:
    """Streaming count/mean/min/max accumulator."""

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("mean of empty RunningStat")
        return self.total / self.count


@dataclass
class Histogram:
    """Integer-keyed histogram (e.g. conflicts per history length, Fig. 10)."""

    counts: Counter = field(default_factory=Counter)

    def add(self, key: int, amount: int = 1) -> None:
        self.counts[key] += amount

    def total(self) -> int:
        return sum(self.counts.values())

    def fraction(self, key: int) -> float:
        total = self.total()
        return self.counts[key] / total if total else 0.0

    def cumulative_fraction_up_to(self, key: int) -> float:
        """Fraction of mass at keys <= ``key``."""
        total = self.total()
        if total == 0:
            return 0.0
        return sum(count for k, count in self.counts.items() if k <= key) / total

    def sorted_items(self) -> List[Tuple[int, int]]:
        return sorted(self.counts.items())

    def merge(self, other: "Histogram") -> None:
        self.counts.update(other.counts)


def normalise(values: Dict[str, float], baseline: Dict[str, float]) -> Dict[str, float]:
    """Per-key ratio ``values[k] / baseline[k]`` (e.g. IPC normalised to ideal)."""
    missing = set(values) - set(baseline)
    if missing:
        raise KeyError(f"baseline missing keys: {sorted(missing)}")
    return {key: values[key] / baseline[key] for key in values}


def mpki(events: int, committed_instructions: int) -> float:
    """Mispredictions per kilo committed instructions."""
    if committed_instructions <= 0:
        raise ValueError("committed_instructions must be positive")
    return events * 1000.0 / committed_instructions


def percent(numerator: float, denominator: float) -> float:
    """Safe percentage; 0.0 when the denominator is zero."""
    return numerator * 100.0 / denominator if denominator else 0.0
