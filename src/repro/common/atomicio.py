"""Crash-safe file writes: temp file in the target directory + atomic rename.

POSIX ``rename(2)`` within one filesystem is atomic, so a reader (or a
process resuming after SIGKILL) observes either the complete previous file
or the complete new file — never a truncated mix. Every durable artefact in
the repository (result-store entries, failure manifests, exported JSON)
goes through :func:`atomic_write_text` so a killed process cannot corrupt
on-disk state.

Because every durable write funnels through :func:`atomic_write_bytes`, it
is also the single choke point for *fault injection*: the chaos harness
(:mod:`repro.harness.chaos`) installs a process-wide write hook here to
simulate disk-full (``ENOSPC``), slow I/O, and bit-flip corruption of
stored artifacts without monkeypatching any store class. Production code
never installs a hook; the default is a plain passthrough.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Callable, Optional, Union

#: Optional fault-injection hook called with ``(path, data)`` before every
#: atomic write. It may raise ``OSError`` (simulating ENOSPC/EIO — the write
#: never happens), sleep (slow I/O), or return replacement bytes (bit-flip
#: corruption: the *corrupted* bytes are durably written). Returning ``None``
#: leaves ``data`` untouched. Install via :func:`set_write_fault_hook`.
WriteFaultHook = Callable[[Path, bytes], Optional[bytes]]

_write_fault_hook: Optional[WriteFaultHook] = None


def set_write_fault_hook(hook: Optional[WriteFaultHook]) -> Optional[WriteFaultHook]:
    """Install (or, with ``None``, clear) the write fault hook.

    Returns the previously installed hook so callers can restore it; the
    chaos engine uses this to scope injection to one campaign.
    """
    global _write_fault_hook
    previous = _write_fault_hook
    _write_fault_hook = hook
    return previous


def write_fault_hook() -> Optional[WriteFaultHook]:
    """The currently installed write fault hook (None in production)."""
    return _write_fault_hook


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically; returns the resolved path.

    The temp file lives in the destination directory (same filesystem, so
    the final ``os.replace`` is atomic) and is fsynced before the rename;
    on any failure the temp file is removed and no partial ``path`` exists.
    """
    path = Path(path)
    if _write_fault_hook is not None:
        replacement = _write_fault_hook(path, data)
        if replacement is not None:
            data = replacement
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as stream:
            stream.write(data)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> Path:
    """Write ``text`` to ``path`` atomically (see :func:`atomic_write_bytes`)."""
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(
    path: Union[str, Path], payload: object, indent: Optional[int] = 2
) -> Path:
    """JSON-serialise ``payload`` and write it atomically."""
    return atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")
