"""Crash-safe file writes: temp file in the target directory + atomic rename.

POSIX ``rename(2)`` within one filesystem is atomic, so a reader (or a
process resuming after SIGKILL) observes either the complete previous file
or the complete new file — never a truncated mix. Every durable artefact in
the repository (result-store entries, failure manifests, exported JSON)
goes through :func:`atomic_write_text` so a killed process cannot corrupt
on-disk state.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically; returns the resolved path.

    The temp file lives in the destination directory (same filesystem, so
    the final ``os.replace`` is atomic) and is fsynced before the rename;
    on any failure the temp file is removed and no partial ``path`` exists.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as stream:
            stream.write(data)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(
    path: Union[str, Path], text: str, encoding: str = "utf-8"
) -> Path:
    """Write ``text`` to ``path`` atomically (see :func:`atomic_write_bytes`)."""
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(
    path: Union[str, Path], payload: object, indent: Optional[int] = 2
) -> Path:
    """JSON-serialise ``payload`` and write it atomically."""
    return atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")
