"""Bit-level helpers used by predictor tables and history hashing.

The paper (Sec. IV-B) accesses prediction tables with a *folded* form of the
divergent-branch history XOR-combined with hashed load PCs:

* index hash: ``PC ^ (PC >> 2) ^ (PC >> 5)``
* tag hash:   the same construction with the PC offset by 3 and 7
* the history is folded down until ``S + T`` bits remain (S index bits,
  T tag bits)

All functions here operate on plain non-negative ints.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def mask(num_bits: int) -> int:
    """Return a bit mask with ``num_bits`` low bits set.

    >>> mask(4)
    15
    """
    if num_bits < 0:
        raise ValueError(f"num_bits must be >= 0, got {num_bits}")
    return (1 << num_bits) - 1


def bit_select(value: int, low: int, num_bits: int) -> int:
    """Extract ``num_bits`` bits of ``value`` starting at bit ``low``."""
    return (value >> low) & mask(num_bits)


def to_signed(value: int, num_bits: int) -> int:
    """Interpret the low ``num_bits`` of ``value`` as a two's-complement int."""
    value &= mask(num_bits)
    sign_bit = 1 << (num_bits - 1)
    return value - (value & sign_bit) * 2


def fold_bits(value: int, width: int) -> int:
    """Fold an arbitrarily long bit string down to ``width`` bits by XOR.

    This mirrors the history-folding hardware of TAGE-style predictors:
    the value is chopped into ``width``-bit chunks which are XORed together,
    so every input bit influences the result.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    folded = 0
    chunk_mask = mask(width)
    while value:
        folded ^= value & chunk_mask
        value >>= width
    return folded


def fold_chunks(chunks: Sequence[int], chunk_bits: int, width: int) -> int:
    """Concatenate fixed-width ``chunks`` (oldest first) and fold to ``width`` bits."""
    value = 0
    chunk_mask = mask(chunk_bits)
    for chunk in chunks:
        value = (value << chunk_bits) | (chunk & chunk_mask)
    return fold_bits(value, width)


def pc_hash_index(pc: int, num_bits: int) -> int:
    """Hash a PC for table indexing: ``PC ^ (PC >> 2) ^ (PC >> 5)`` (Sec. IV-B)."""
    return (pc ^ (pc >> 2) ^ (pc >> 5)) & mask(num_bits)


def pc_hash_tag(pc: int, num_bits: int) -> int:
    """Hash a PC for tags using the paper's 3/7 offsets: ``PC ^ (PC>>3) ^ (PC>>7)``."""
    return (pc ^ (pc >> 3) ^ (pc >> 7)) & mask(num_bits)


def xor_reduce(values: Iterable[int]) -> int:
    """XOR together an iterable of ints."""
    result = 0
    for value in values:
        result ^= value
    return result


def popcount(value: int) -> int:
    """Number of set bits in ``value``."""
    if value < 0:
        raise ValueError("popcount expects a non-negative value")
    return bin(value).count("1")


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ceil_log2(value: int) -> int:
    """Smallest ``n`` with ``2**n >= value`` (``value`` must be positive)."""
    if value <= 0:
        raise ValueError(f"value must be positive, got {value}")
    return (value - 1).bit_length()
