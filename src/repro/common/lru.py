"""Least-recently-used replacement: set-associative state and a bounded cache.

Every limited predictor in the paper (PHAST, NoSQ, MDP-TAGE-S) and the cache
models are set-associative with LRU replacement; :class:`LRUState` centralises
that logic so the tables stay focused on prediction semantics.
:class:`LRUCache` is the software-side counterpart — a bounded mapping with
LRU eviction and hit/miss counters, used to cap in-process caches (e.g. the
simulator's trace cache) so long-lived server-style processes cannot grow
without bound.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterator, List, NamedTuple, Optional, TypeVar

V = TypeVar("V")


class CacheInfo(NamedTuple):
    """Observability snapshot of an :class:`LRUCache` (functools-style)."""

    hits: int
    misses: int
    maxsize: int
    currsize: int


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    ``get`` promotes the entry to most-recently-used; ``put`` inserts (or
    refreshes) an entry and evicts the least recently used one when the cache
    is over capacity. Hits and misses are counted for observability via
    :meth:`info`.
    """

    __slots__ = ("_maxsize", "_data", "_hits", "_misses")

    def __init__(self, maxsize: int) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self._maxsize = maxsize
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()
        self._hits = 0
        self._misses = 0

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def resize(self, maxsize: int) -> None:
        """Change the capacity, evicting LRU entries if shrinking below size."""
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self._maxsize = maxsize
        while len(self._data) > maxsize:
            self._data.popitem(last=False)

    def get(self, key: Hashable, default: Optional[V] = None):
        """Return the cached value (promoting it), or ``default`` on a miss."""
        try:
            value = self._data[key]
        except KeyError:
            self._misses += 1
            return default
        self._data.move_to_end(key)
        self._hits += 1
        return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert or refresh ``key``, evicting the LRU entry if over capacity."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self._maxsize:
            self._data.popitem(last=False)

    def peek(self, key: Hashable, default: Optional[V] = None):
        """Like :meth:`get` but without promoting or counting hits/misses."""
        return self._data.get(key, default)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._data)

    def clear(self) -> None:
        """Drop every entry (the hit/miss counters keep accumulating)."""
        self._data.clear()

    def info(self) -> CacheInfo:
        return CacheInfo(
            hits=self._hits,
            misses=self._misses,
            maxsize=self._maxsize,
            currsize=len(self._data),
        )

    def __repr__(self) -> str:
        return (
            f"LRUCache(maxsize={self._maxsize}, size={len(self._data)}, "
            f"hits={self._hits}, misses={self._misses})"
        )


class LRUState:
    """Tracks recency among ``ways`` slots of one set.

    The implementation keeps an ordered list of way indices, most recently
    used first. ``touch`` promotes a way; ``victim`` returns the least
    recently used way. This models a true-LRU policy; the 2-bit LRU field in
    Table II is the hardware encoding of the same ordering for 4 ways.
    """

    __slots__ = ("_order",)

    def __init__(self, ways: int) -> None:
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        # Way 0 starts as LRU so that cold allocation fills ways in order.
        self._order: List[int] = list(range(ways - 1, -1, -1))

    @property
    def ways(self) -> int:
        return len(self._order)

    def touch(self, way: int) -> None:
        """Mark ``way`` as most recently used."""
        order = self._order
        if order[0] == way:
            return
        order.remove(way)
        order.insert(0, way)

    def victim(self) -> int:
        """Return the least recently used way (does not modify recency)."""
        return self._order[-1]

    def most_recent(self) -> int:
        return self._order[0]

    def recency_order(self) -> List[int]:
        """Ways ordered most-recent first (a copy)."""
        return list(self._order)

    def __repr__(self) -> str:
        return f"LRUState(order={self._order})"
