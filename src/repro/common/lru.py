"""Least-recently-used replacement state for set-associative structures.

Every limited predictor in the paper (PHAST, NoSQ, MDP-TAGE-S) and the cache
models are set-associative with LRU replacement; this class centralises that
logic so the tables stay focused on prediction semantics.
"""

from __future__ import annotations

from typing import List


class LRUState:
    """Tracks recency among ``ways`` slots of one set.

    The implementation keeps an ordered list of way indices, most recently
    used first. ``touch`` promotes a way; ``victim`` returns the least
    recently used way. This models a true-LRU policy; the 2-bit LRU field in
    Table II is the hardware encoding of the same ordering for 4 ways.
    """

    __slots__ = ("_order",)

    def __init__(self, ways: int) -> None:
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        # Way 0 starts as LRU so that cold allocation fills ways in order.
        self._order: List[int] = list(range(ways - 1, -1, -1))

    @property
    def ways(self) -> int:
        return len(self._order)

    def touch(self, way: int) -> None:
        """Mark ``way`` as most recently used."""
        self._order.remove(way)
        self._order.insert(0, way)

    def victim(self) -> int:
        """Return the least recently used way (does not modify recency)."""
        return self._order[-1]

    def most_recent(self) -> int:
        return self._order[0]

    def recency_order(self) -> List[int]:
        """Ways ordered most-recent first (a copy)."""
        return list(self._order)

    def __repr__(self) -> str:
        return f"LRUState(order={self._order})"
