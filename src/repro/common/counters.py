"""Saturating counters, the bread and butter of hardware predictors."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SaturatingCounter:
    """An n-bit saturating counter.

    The counter holds values in ``[0, 2**bits - 1]``. ``increment`` and
    ``decrement`` saturate at the bounds. PHAST (Sec. IV-A2) uses a 4-bit
    confidence counter that is *reset to maximum* on a correct prediction and
    decremented otherwise; both policies are provided.
    """

    bits: int
    value: int = field(default=0)

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError(f"bits must be positive, got {self.bits}")
        if not 0 <= self.value <= self.maximum:
            raise ValueError(
                f"value {self.value} out of range for {self.bits}-bit counter"
            )

    @property
    def maximum(self) -> int:
        """Largest representable value."""
        return (1 << self.bits) - 1

    @property
    def is_saturated_high(self) -> bool:
        return self.value == self.maximum

    @property
    def is_zero(self) -> bool:
        return self.value == 0

    def increment(self, amount: int = 1) -> int:
        """Add ``amount``, saturating at the maximum. Returns the new value."""
        self.value = min(self.maximum, self.value + amount)
        return self.value

    def decrement(self, amount: int = 1) -> int:
        """Subtract ``amount``, saturating at zero. Returns the new value."""
        self.value = max(0, self.value - amount)
        return self.value

    def reset_to_max(self) -> None:
        """Set the counter to its maximum (PHAST's correct-prediction policy)."""
        self.value = self.maximum

    def reset(self) -> None:
        """Set the counter to zero."""
        self.value = 0

    def set(self, value: int) -> None:
        """Set an explicit value, clamping into range."""
        self.value = max(0, min(self.maximum, value))


@dataclass
class SignedSaturatingCounter:
    """A two's-complement style counter in ``[-2**(bits-1), 2**(bits-1) - 1]``.

    Used by the perceptron memory dependence predictor's weights and by
    bimodal/TAGE branch-prediction counters (taken when ``value >= 0``).
    """

    bits: int
    value: int = field(default=0)

    def __post_init__(self) -> None:
        if self.bits <= 1:
            raise ValueError(f"bits must be > 1, got {self.bits}")
        if not self.minimum <= self.value <= self.maximum:
            raise ValueError(
                f"value {self.value} out of range for signed {self.bits}-bit counter"
            )

    @property
    def maximum(self) -> int:
        return (1 << (self.bits - 1)) - 1

    @property
    def minimum(self) -> int:
        return -(1 << (self.bits - 1))

    @property
    def is_positive(self) -> bool:
        """Predict-taken / predict-dependent polarity."""
        return self.value >= 0

    def increment(self, amount: int = 1) -> int:
        self.value = min(self.maximum, self.value + amount)
        return self.value

    def decrement(self, amount: int = 1) -> int:
        self.value = max(self.minimum, self.value - amount)
        return self.value

    def update_towards(self, taken: bool) -> int:
        """Strengthen towards ``taken`` (True: +1, False: -1)."""
        return self.increment() if taken else self.decrement()
