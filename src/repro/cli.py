"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — simulate one (workload, predictor) pair and print the result.
* ``suite`` — run a predictor roster over workloads, print Fig. 15-style
  normalised IPC and the mean-speedup summary.
* ``sweep`` — fault-tolerant resumable sweep: per-cell worker processes,
  timeouts, retries, a durable result store and a failure manifest
  (``--resume`` to continue a killed campaign, ``--status`` to inspect it).
* ``probe`` — simulate one pair with interval metrics enabled and print the
  per-window IPC / violation-MPKI / occupancy table (``--json`` to export).
* ``sample`` — checkpointed sampled run (``repro.sampling``): functional
  warming to SimPoint representatives, detailed interval runs (optionally
  fanned out across workers), weighted estimate with 95% sampling CIs.
* ``trace`` — manage the compiled trace artifact store
  (``trace compile`` / ``trace ls`` / ``trace verify``).
* ``chaos`` — deterministic fault-injection soak: run a sweep twice (clean,
  then under a seeded :class:`~repro.harness.chaos.FaultPlan`) and gate on
  completion, fault classification, and bit-identical surviving results.
* ``serve`` — simulation-as-a-service: the asyncio HTTP front door
  (wire schema v1, store dedupe before scheduling, SSE progress; see
  docs/server.md).
* ``submit`` — submit a grid to a running ``repro serve`` via
  :class:`repro.client.SweepClient` and (by default) wait for it.
* ``backends`` — inspect the execution-backend registry
  (``backends ls``); ``sweep --backend batch`` selects one for a campaign.
* ``export`` — run a sweep and write JSON records (``--provenance`` for the
  self-contained format the surrogate dataset builder consumes).
* ``surrogate`` — the learned IPC/MPKI surrogate (docs/surrogate.md):
  ``build`` a dataset from a store or provenance export, ``train`` the
  bagged-ridge ensemble, ``eval`` held-out error/coverage with CI gates,
  ``predict`` a grid without simulating; ``sweep --surrogate triage``
  settles tight-CI cells from the model.
* ``workloads`` — list the synthetic SPEC CPU 2017-like profiles.
* ``predictors`` — list the predictor registry with storage budgets.
* ``table2`` — print the reproduced Table II (configurations/storage/energy).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.analysis.export import dump_results, intervals_to_records
from repro.analysis.report import format_table
from repro.common.atomicio import atomic_write_text
from repro.common.stats import geometric_mean
from repro.core.config import GENERATIONS, CoreConfig
from repro.harness.chaos import FaultPlan
from repro.harness.executor import ProcessCellExecutor
from repro.harness.store import ResultStore
from repro.harness.sweep import SweepRunner, build_cells
from repro.isa.artifacts import ENV_TRACE_STORE, CheckpointStore, TraceStore
from repro.mdp.storage import format_table2
from repro.sampling import (
    default_sample_interval_ops,
    default_sample_warmup_ops,
    run_sampled,
)
from repro.sim.backends import available_backends, get_backend
from repro.sim.experiment import ExperimentGrid
from repro.sim.intervals import DEFAULT_INTERVAL_OPS
from repro.sim.spec import RunSpec
from repro.sim.simulator import (
    available_predictors,
    default_num_ops,
    make_predictor,
    simulate,
)
from repro.workloads.spec2017 import SPEC_PROFILES, spec_suite, workload

#: Default durable store location; flags override, env overrides the default.
ENV_STORE = "REPRO_RESULT_STORE"
DEFAULT_STORE = ".repro-store"


def _default_trace_store() -> str:
    """$REPRO_TRACE_STORE, else ``traces/`` under the default result store."""
    explicit = os.environ.get(ENV_TRACE_STORE)
    if explicit:
        return explicit
    return os.path.join(os.environ.get(ENV_STORE, DEFAULT_STORE), "traces")


def _core_config(name: str) -> CoreConfig:
    try:
        return GENERATIONS[name]
    except KeyError:
        raise SystemExit(
            f"unknown core {name!r}; available: {', '.join(sorted(GENERATIONS))}"
        )


def _cmd_run(args: argparse.Namespace) -> int:
    result = simulate(
        RunSpec(
            workload=args.workload,
            predictor=args.predictor,
            config=_core_config(args.core),
            num_ops=args.num_ops,
            seed=args.seed,
            check_invariants=True if args.check_invariants else None,
        )
    )
    print(result.summary())
    stats = result.pipeline
    print(
        f"cycles={stats.cycles}  committed={stats.committed_uops}  "
        f"loads={stats.loads}  stores={stats.stores}  "
        f"branches={stats.branches} (mispredicted {stats.branch_mispredicts})"
    )
    print(
        f"violations={stats.violations}  false_positives={stats.false_positives}  "
        f"correct_waits={stats.correct_waits}  forwarded={stats.forwarded_loads}  "
        f"partial={stats.partial_loads}"
    )
    return 0


def _cmd_probe(args: argparse.Namespace) -> int:
    result = simulate(
        RunSpec(
            workload=args.workload,
            predictor=args.predictor,
            config=_core_config(args.core),
            num_ops=args.num_ops,
            seed=args.seed,
            interval_ops=args.interval_ops,
        )
    )
    rows = []
    for window in result.intervals:
        ops = f"{window.start_op}-{window.end_op}" + ("*" if window.partial else "")
        rows.append(
            [
                window.index,
                ops,
                window.cycles,
                f"{window.ipc:.3f}",
                f"{window.violation_mpki:.3f}",
                f"{window.branch_mpki:.3f}",
                f"{window.occupancy:.1f}",
            ]
        )
    print(
        format_table(
            ["window", "ops", "cycles", "ipc", "viol_mpki", "br_mpki", "rob_occ"],
            rows,
            title=(
                f"{args.workload}/{args.predictor} per-{args.interval_ops}-op "
                f"intervals ({args.core}, {args.num_ops} ops; * = partial window)"
            ),
        )
    )
    print(result.summary())
    if args.json:
        records = intervals_to_records(result)
        atomic_write_text(args.json, json.dumps(records, indent=2) + "\n")
        print(f"wrote {len(records)} interval records to {args.json}")
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    workloads = spec_suite(subset=args.subset)
    predictors: List[str] = args.predictors.split(",")
    for name in predictors:
        if name not in available_predictors():
            raise SystemExit(f"unknown predictor {name!r}")
    grid = ExperimentGrid(num_ops=args.num_ops)
    config = _core_config(args.core)
    ideal = {
        name: grid.run(name, "ideal", config, seed=args.seed) for name in workloads
    }

    rows = []
    normalized = {name: [] for name in predictors}
    for workload_name in workloads:
        row: List[object] = [workload_name]
        for name in predictors:
            result = grid.run(workload_name, name, config, seed=args.seed)
            ratio = result.ipc / ideal[workload_name].ipc
            normalized[name].append(ratio)
            row.append(ratio)
        rows.append(row)
    rows.append(["GEOMEAN"] + [geometric_mean(normalized[n]) for n in predictors])
    print(
        format_table(
            ["workload"] + predictors,
            rows,
            title=f"IPC normalised to ideal ({config.name}, {args.num_ops} ops)",
        )
    )
    return 0


def _cmd_workloads(_: argparse.Namespace) -> int:
    rows = [
        [name, profile.seed, profile.description]
        for name, profile in sorted(SPEC_PROFILES.items())
    ]
    print(format_table(["workload", "seed", "character"], rows))
    return 0


def _cmd_predictors(_: argparse.Namespace) -> int:
    rows = []
    for name in available_predictors():
        predictor = make_predictor(name)
        kb = predictor.storage_kb()
        rows.append([name, f"{kb:.2f}" if kb else "-", type(predictor).__name__])
    print(format_table(["predictor", "KB", "class"], rows))
    return 0


def _cmd_backends_ls(_: argparse.Namespace) -> int:
    rows = []
    for name in available_backends():
        row = get_backend(name).describe()
        rows.append(
            [
                name,
                row.get("class", "-"),
                "yes" if row.get("available", True) else "no",
                str(row.get("numpy", "-")),
                str(row.get("kernels", "-")),
            ]
        )
    print(format_table(["backend", "class", "available", "numpy", "kernels"], rows))
    return 0


def _cmd_table2(_: argparse.Namespace) -> int:
    print(format_table2())
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    workloads = spec_suite(subset=args.subset)
    predictors = args.predictors.split(",")
    for name in predictors:
        if name not in available_predictors():
            raise SystemExit(f"unknown predictor {name!r}")
    config = _core_config(args.core)
    if args.provenance:
        # Provenance export: full RunSpec wire dicts plus interval records,
        # so a surrogate dataset built from this file featurizes exactly
        # like one built from the originating store (docs/surrogate.md).
        from repro.analysis.export import dump_provenance
        from repro.sim.simulator import run_spec

        pairs = []
        for name in workloads:
            for predictor in predictors:
                spec = RunSpec(
                    workload=name,
                    predictor=predictor,
                    config=config,
                    num_ops=args.num_ops,
                    seed=args.seed,
                    interval_ops=args.interval_ops or None,
                )
                pairs.append((spec, run_spec(spec)))
        dump_provenance(pairs, args.output)
        print(f"wrote {len(pairs)} provenance records to {args.output}")
        return 0
    grid = ExperimentGrid(num_ops=args.num_ops)
    results = [
        grid.run(workload, predictor, config, seed=args.seed)
        for workload in workloads
        for predictor in predictors
    ]
    dump_results(results, args.output)
    print(f"wrote {len(results)} records to {args.output}")
    return 0


def _cmd_trace_compile(args: argparse.Namespace) -> int:
    store = TraceStore(args.store)
    names = args.workloads.split(",") if args.workloads else spec_suite(args.subset)
    for name in names:
        if name not in SPEC_PROFILES:
            raise SystemExit(f"unknown workload {name!r}")
    built = loaded = 0
    for name in names:
        profile = workload(name, seed=args.seed)
        _, was_built = store.compile(profile, args.num_ops)
        built += was_built
        loaded += not was_built
    # A fresh compile pass defines the new "zero rebuilds" baseline.
    store.clear_rebuilds()
    print(
        f"trace store: {store.root} — compiled {built}, "
        f"already stored {loaded} ({args.num_ops} ops each)"
    )
    return 0


def _cmd_trace_ls(args: argparse.Namespace) -> int:
    store = TraceStore(args.store)
    entries = store.entries()
    rows = [
        [
            str(entry.get("workload")),
            entry.get("seed"),
            entry.get("num_ops"),
            entry.get("generator_version"),
            entry.get("bytes"),
            str(entry.get("key"))[:12],
        ]
        for entry in entries
    ]
    print(
        format_table(
            ["workload", "seed", "num_ops", "gen", "bytes", "digest"],
            rows,
            title=f"{store.root}: {len(entries)} artifacts, "
            f"{store.rebuild_count()} rebuild markers",
        )
    )
    return 0


def _cmd_trace_verify(args: argparse.Namespace) -> int:
    store = TraceStore(args.store)
    problems = store.verify()
    checked = len(store.entries())
    if args.deep:
        # Regenerate each trace from its profile and compare op-for-op: the
        # strongest guarantee that replaying artifacts cannot change results.
        from repro.workloads.generator import GENERATOR_VERSION, build_trace

        for entry in store.entries():
            name, seed = str(entry.get("workload")), entry.get("seed")
            num_ops = entry.get("num_ops")
            digest = str(entry.get("key"))[:12]
            if entry.get("generator_version") != GENERATOR_VERSION:
                problems.append(
                    f"{digest}: generator {entry.get('generator_version')} != "
                    f"current {GENERATOR_VERSION} (stale artifact)"
                )
                continue
            if name not in SPEC_PROFILES:
                problems.append(f"{digest}: unknown workload {name!r}")
                continue
            from repro.isa.artifacts import TraceKey

            stored = store.load(TraceKey(digest=str(entry["key"]), describe=entry))
            if stored is None:
                continue  # already reported by the shallow pass
            fresh = build_trace(workload(name, seed=seed), int(num_ops))
            if list(stored.ops) != list(fresh.ops):
                problems.append(f"{digest}: ops differ from a fresh build")
    for problem in problems:
        print(f"PROBLEM {problem}")
    mode = "deep" if args.deep else "shallow"
    print(
        f"trace store: {store.root} — verified {checked} artifacts "
        f"({mode}), {len(problems)} problems"
    )
    return 1 if problems else 0


def _surrogate_tier(mode: Optional[str], model_path: Optional[str], store):
    """Resolve the sweep's surrogate tier from flags/env, or None when off.

    A non-``off`` mode without a model path is an operator error: the sweep
    must not silently run full-detail when triage was asked for.
    """
    from repro.surrogate.triage import (
        SurrogateStore,
        default_mode,
        default_model_path,
        load_tier,
    )

    resolved_mode = mode if mode is not None else default_mode()
    if resolved_mode == "off":
        return None
    resolved_path = (
        model_path if model_path is not None else default_model_path()
    )
    if not resolved_path:
        raise SystemExit(
            f"--surrogate {resolved_mode} needs a model: pass "
            "--surrogate-model or set REPRO_SURROGATE_MODEL "
            "(train one with 'repro surrogate train')"
        )
    from repro.surrogate.model import SurrogateError

    try:
        return load_tier(
            resolved_path,
            mode=resolved_mode,
            store=SurrogateStore(store.root),
        )
    except SurrogateError as exc:
        raise SystemExit(str(exc)) from exc


def _cmd_surrogate_build(args: argparse.Namespace) -> int:
    from repro.analysis.export import load_provenance
    from repro.surrogate.dataset import (
        build_dataset,
        extract_store_records,
        records_from_provenance,
    )

    if args.provenance:
        records, skipped = records_from_provenance(
            load_provenance(args.provenance)
        )
        source = args.provenance
    else:
        records, skipped = extract_store_records(args.store)
        source = args.store
    if not records:
        raise SystemExit(
            f"no usable completed cells in {source} "
            f"({skipped} skipped); run a sweep first"
        )
    dataset = build_dataset(records, skipped=skipped)
    destination = args.output or os.path.join(args.store, "datasets")
    path = dataset.save(destination)
    print(dataset.summary())
    print(f"wrote {path}")
    return 0


def _cmd_surrogate_train(args: argparse.Namespace) -> int:
    from repro.surrogate.dataset import load_dataset
    from repro.surrogate.model import SurrogateError, train_model

    dataset = load_dataset(args.dataset)
    if dataset is None:
        raise SystemExit(
            f"dataset at {args.dataset} is missing or corrupt; "
            "rebuild it with 'repro surrogate build'"
        )
    try:
        model = train_model(
            dataset,
            members=args.members,
            ridge=args.ridge,
            seed=args.train_seed,
            level=args.level,
        )
    except SurrogateError as exc:
        raise SystemExit(str(exc)) from exc
    destination = args.output or os.path.dirname(args.dataset) or "."
    path = model.save(destination)
    print(model.summary())
    print(f"wrote {path}")
    return 0


def _cmd_surrogate_eval(args: argparse.Namespace) -> int:
    from repro.surrogate.dataset import load_dataset
    from repro.surrogate.model import SurrogateError, load_model

    dataset = load_dataset(args.dataset)
    if dataset is None:
        raise SystemExit(f"dataset at {args.dataset} is missing or corrupt")
    model = load_model(args.model)
    if model is None:
        raise SystemExit(f"model at {args.model} is missing or corrupt")
    try:
        metrics = model.evaluate(dataset, split=args.split)
    except SurrogateError as exc:
        raise SystemExit(str(exc)) from exc
    if args.json:
        print(json.dumps(metrics, indent=2, sort_keys=True))
    else:
        rows = [
            [
                target,
                stats["rows"],
                f"{stats['mae']:.4f}",
                f"{stats['mape']:.4f}",
                f"{stats['coverage']:.3f}",
                f"{stats['mean_halfwidth']:.4f}",
            ]
            for target, stats in metrics.items()
        ]
        print(
            format_table(
                ["target", "rows", "mae", "mape", "coverage", "halfwidth"],
                rows,
                title=f"{args.split} split, nominal level {model.level:g}",
            )
        )
    failed = []
    if args.max_ipc_mape is not None:
        if metrics["ipc"]["mape"] > args.max_ipc_mape:
            failed.append(
                f"ipc MAPE {metrics['ipc']['mape']:.4f} > "
                f"bound {args.max_ipc_mape}"
            )
    if args.max_mpki_mae is not None:
        if metrics["violation_mpki"]["mae"] > args.max_mpki_mae:
            failed.append(
                f"violation-MPKI MAE {metrics['violation_mpki']['mae']:.4f} "
                f"> bound {args.max_mpki_mae}"
            )
    if args.min_coverage is not None:
        for target in ("ipc", "violation_mpki"):
            if metrics[target]["coverage"] < args.min_coverage:
                failed.append(
                    f"{target} coverage {metrics[target]['coverage']:.3f} < "
                    f"required {args.min_coverage}"
                )
    for problem in failed:
        print(f"GATE FAILED: {problem}")
    if not failed and (
        args.max_ipc_mape is not None
        or args.max_mpki_mae is not None
        or args.min_coverage is not None
    ):
        print("OK: all calibration gates passed")
    return 1 if failed else 0


def _cmd_surrogate_predict(args: argparse.Namespace) -> int:
    from repro.surrogate.model import SurrogateError, load_model

    model = load_model(args.model)
    if model is None:
        raise SystemExit(f"model at {args.model} is missing or corrupt")
    workloads = (
        args.workloads.split(",") if args.workloads else spec_suite(args.subset)
    )
    predictors = args.predictors.split(",")
    config = _core_config(args.core)
    estimates = []
    try:
        for name in workloads:
            for predictor in predictors:
                predicted = model.predict_cell(
                    name, predictor, config, args.num_ops, args.seed
                )
                predicted["workload"] = name
                predicted["predictor"] = predictor
                estimates.append(predicted)
    except SurrogateError as exc:
        raise SystemExit(str(exc)) from exc
    if args.json:
        print(json.dumps(estimates, indent=2, sort_keys=True))
        return 0
    rows = [
        [
            est["workload"],
            est["predictor"],
            f"{est['ipc']:.3f}±{est['ipc_ci']:.3f}",
            f"{est['violation_mpki']:.3f}±{est['violation_mpki_ci']:.3f}",
            "yes" if est["novel"] else "",
        ]
        for est in estimates
    ]
    print(
        format_table(
            ["workload", "predictor", "ipc", "violation_mpki", "novel"],
            rows,
            title=(
                f"surrogate estimates @{model.level:g} "
                f"(model {model.content_sha256[:12]})"
            ),
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    workloads = spec_suite(subset=args.subset)
    predictors = args.predictors.split(",")
    for name in predictors:
        if name not in available_predictors():
            raise SystemExit(f"unknown predictor {name!r}")
    cells = build_cells(
        workloads,
        predictors,
        config=_core_config(args.core),
        num_ops=args.num_ops,
        seed=args.seed,
        backend=args.backend,
    )
    store = ResultStore(args.store)
    runner = SweepRunner(
        store,
        ProcessCellExecutor(
            timeout=args.timeout,
            retries=args.retries,
            workers=args.workers,
            check_invariants=args.check_invariants,
            jitter_seed=args.jitter_seed,
            breaker_threshold=args.breaker_threshold,
        ),
    )

    if args.status:
        status = runner.status(cells)
        print(f"store: {store.root}")
        print(status.summary())
        return 0

    surrogate_tier = _surrogate_tier(
        args.surrogate, args.surrogate_model, store
    )

    def progress(outcome) -> None:
        spec = outcome.spec
        if outcome.ok:
            tag = "cached" if outcome.cached else "ok"
            print(f"  [{tag}] {spec.workload}/{spec.predictor}")
        elif outcome.estimate is not None:
            print(
                f"  [surrogate] {spec.workload}/{spec.predictor} "
                f"{outcome.estimate.summary()}"
            )
        else:
            print(f"  {outcome.failure.summary()}")

    report = runner.run(
        cells,
        resume=not args.no_resume,
        progress=progress,
        deadline=args.deadline,
        quarantine=args.quarantine,
        surrogate=surrogate_tier,
    )
    print(report.summary())
    print(f"failure manifest: {store.manifest_path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.server.http import serve

    try:
        asyncio.run(
            serve(
                args.store,
                host=args.host,
                port=args.port,
                workers=args.workers,
                timeout=args.timeout,
                retries=args.retries,
                dispatchers=args.dispatchers,
                lease_ttl=args.lease_ttl,
                surrogate_model=args.surrogate_model,
                surrogate_mode=args.surrogate,
            )
        )
    except KeyboardInterrupt:
        print("repro serve: shutting down")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.client import ServerError, SweepClient

    client = SweepClient(args.server, tenant=args.tenant)
    workloads = (
        args.workloads.split(",") if args.workloads else spec_suite(args.subset)
    )
    try:
        receipt = client.submit_grid(
            workloads,
            args.predictors.split(","),
            config=_core_config(args.core),
            num_ops=args.num_ops,
            seed=args.seed,
            check_invariants=args.check_invariants,
            backend=args.backend,
        )
    except ServerError as exc:
        raise SystemExit(f"submit rejected: {exc}") from exc
    print(
        f"submitted {receipt['id']}: {receipt['cells']} cells "
        f"(cached={receipt['cached']}, scheduled={receipt['scheduled']})"
    )
    if args.no_wait:
        return 0
    status = client.wait(receipt["id"], timeout=args.wait_timeout)
    summary = status.get("summary") or ""
    print(f"{receipt['id']}: {status['state']} — {summary}".rstrip(" —"))
    return 0 if status["state"] == "completed" else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Twin-sweep chaos soak: clean baseline vs. seeded fault injection.

    The gate passes when (1) the chaos sweep completes every cell (no lost
    results), (2) every injected worker fault was classified into exactly
    the FailureKind it simulates, and (3) every surviving chaos result is
    bit-identical to its fault-free twin.
    """
    workloads = spec_suite(subset=args.subset)
    predictors = args.predictors.split(",")
    for name in predictors:
        if name not in available_predictors():
            raise SystemExit(f"unknown predictor {name!r}")

    if args.plan:
        plan = FaultPlan.load(args.plan)
    else:
        plan = FaultPlan.transient(
            args.rate, seed=args.seed, max_faults=args.max_faults
        )
    config = _core_config(args.core)

    def sweep(store_root: str, fault_plan) -> object:
        cells = build_cells(
            workloads,
            predictors,
            config=config,
            num_ops=args.num_ops,
            seed=args.seed_trace,
        )
        runner = SweepRunner(
            ResultStore(store_root),
            ProcessCellExecutor(
                timeout=args.timeout,
                retries=args.retries,
                workers=args.workers,
                backoff_base=args.backoff_base,
                jitter_seed=plan.seed,
            ),
        )
        return runner.run(cells, fault_plan=fault_plan)

    total = len(workloads) * len(predictors)
    print(
        f"chaos soak: {total} cells, plan seed={plan.seed} "
        f"total-rate={plan.total_rate:.2f}"
    )
    baseline = sweep(os.path.join(args.store, "baseline"), None)
    print(f"baseline  {baseline.summary()}")
    chaotic = sweep(os.path.join(args.store, "chaos"), plan)
    print(f"chaos     {chaotic.summary()}")
    summary = chaotic.chaos.summary()
    print(f"injected: {summary['injected']} faults — {summary['by_site']}")

    problems = list(chaotic.chaos.verify())
    lost = total - chaotic.completed - chaotic.failed
    if lost:
        problems.append(f"{lost} cell(s) lost: neither a result nor a failure")
    if chaotic.failed:
        problems.append(
            f"{chaotic.failed} cell(s) failed under chaos "
            "(transient plans must complete after retries)"
        )
    mismatched = 0
    for key, clean_result in baseline.results.items():
        survivor = chaotic.results.get(key)
        if survivor is None:
            continue
        if survivor.to_record() != clean_result.to_record():
            mismatched += 1
            problems.append(f"{key[0]}/{key[1]}: result differs from baseline")
    survivors = len(chaotic.results)
    print(
        f"bit-identity: {survivors - mismatched}/{survivors} surviving "
        f"cells identical to the fault-free baseline"
    )
    for problem in problems:
        print(f"PROBLEM {problem}")
    verdict = "PASS" if not problems else "FAIL"
    print(
        f"chaos soak: {verdict} ({total} cells, {summary['injected']} faults "
        f"injected, {len(problems)} problems)"
    )
    return 1 if problems else 0


def _cmd_sample(args: argparse.Namespace) -> int:
    spec = RunSpec(
        workload=args.workload,
        predictor=args.predictor,
        config=_core_config(args.core),
        num_ops=args.num_ops,
        seed=args.seed,
        check_invariants=True if args.check_invariants else None,
        trace_dir=args.trace_store,
    )
    interval_ops = (
        default_sample_interval_ops()
        if args.interval_ops is None
        else args.interval_ops
    )
    warmup_ops = (
        default_sample_warmup_ops() if args.warmup_ops is None else args.warmup_ops
    )
    result = run_sampled(
        spec,
        interval_ops=interval_ops,
        warmup_ops=warmup_ops,
        max_clusters=args.clusters,
        seed=args.cluster_seed,
        checkpoint_store=CheckpointStore(args.checkpoint_store),
        workers=args.workers,
    )
    sampling = result.sampling
    print(result.summary())
    print(
        f"ipc={sampling.ipc:.4f} ±{sampling.ipc_ci95:.4f}  "
        f"violation_mpki={sampling.violation_mpki:.3f} "
        f"±{sampling.violation_mpki_ci95:.3f}  (95% sampling CI)"
    )
    print(
        f"intervals: {sampling.num_representatives} representatives of "
        f"{sampling.num_intervals} x {sampling.interval_ops} ops "
        f"(+{sampling.warmup_ops}-op detailed lead each); "
        f"detail fraction {sampling.detail_fraction:.4f}"
    )
    print(
        f"checkpoints: reused={sampling.checkpoints_reused} "
        f"warmed={sampling.checkpoints_warmed} store={args.checkpoint_store}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PHAST (HPCA 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    # Resolved at parser-build time (not import time) so REPRO_TRACE_OPS set
    # by a wrapper script before main() is honoured.
    num_ops_default = default_num_ops()
    from repro.surrogate.triage import (
        default_level as _default_level,
        default_members as _default_members,
        default_ridge as _default_ridge,
        default_seed as _default_seed,
    )

    surrogate_members_default = _default_members()
    surrogate_ridge_default = _default_ridge()
    surrogate_level_default = _default_level()
    surrogate_seed_default = _default_seed()

    run = sub.add_parser("run", help="simulate one workload/predictor pair")
    run.add_argument("workload")
    run.add_argument("predictor", choices=available_predictors())
    run.add_argument("--num-ops", type=int, default=num_ops_default)
    run.add_argument("--core", default="alderlake", choices=sorted(GENERATIONS))
    run.add_argument(
        "--seed", type=int, default=None, help="override the workload trace seed"
    )
    run.add_argument(
        "--check-invariants",
        action="store_true",
        help="enable simulator self-checks (fail loudly on model corruption)",
    )
    run.set_defaults(func=_cmd_run)

    probe = sub.add_parser(
        "probe",
        help="per-interval IPC/MPKI/occupancy windows for one pair",
    )
    probe.add_argument("workload")
    probe.add_argument("predictor", choices=available_predictors())
    probe.add_argument("--num-ops", type=int, default=num_ops_default)
    probe.add_argument(
        "--interval-ops",
        type=int,
        default=DEFAULT_INTERVAL_OPS,
        help="committed micro-ops per metrics window",
    )
    probe.add_argument("--core", default="alderlake", choices=sorted(GENERATIONS))
    probe.add_argument(
        "--seed", type=int, default=None, help="override the workload trace seed"
    )
    probe.add_argument(
        "--json", default=None, help="also write interval records to this path"
    )
    probe.set_defaults(func=_cmd_probe)

    suite = sub.add_parser("suite", help="predictor roster over the suite")
    suite.add_argument(
        "--predictors", default="store-sets,nosq,mdp-tage,mdp-tage-s,phast"
    )
    suite.add_argument("--num-ops", type=int, default=num_ops_default)
    suite.add_argument("--subset", type=int, default=None)
    suite.add_argument("--core", default="alderlake", choices=sorted(GENERATIONS))
    suite.add_argument(
        "--seed", type=int, default=None, help="override every workload's trace seed"
    )
    suite.set_defaults(func=_cmd_suite)

    sweep = sub.add_parser(
        "sweep",
        help="fault-tolerant resumable sweep with a durable result store",
    )
    sweep.add_argument(
        "--predictors", default="store-sets,nosq,mdp-tage,mdp-tage-s,phast,ideal"
    )
    sweep.add_argument("--num-ops", type=int, default=num_ops_default)
    sweep.add_argument("--subset", type=int, default=None)
    sweep.add_argument("--core", default="alderlake", choices=sorted(GENERATIONS))
    sweep.add_argument("--seed", type=int, default=None)
    sweep.add_argument(
        "--store",
        default=os.environ.get(ENV_STORE, DEFAULT_STORE),
        help=f"result store directory (default ${ENV_STORE} or {DEFAULT_STORE})",
    )
    sweep.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-cell wall-clock budget in seconds ($REPRO_SWEEP_TIMEOUT)",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=None,
        help="retries for transient failures ($REPRO_SWEEP_RETRIES)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help="concurrent worker processes ($REPRO_SWEEP_WORKERS)",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="reuse completed cells from the store (the default; kept as an "
        "explicit flag for campaign scripts)",
    )
    sweep.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore previously stored results and re-simulate every cell",
    )
    sweep.add_argument(
        "--status",
        action="store_true",
        help="report completed/failed/pending counts without running",
    )
    sweep.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="campaign wall-clock budget in seconds: cells still running or "
        "pending when it expires are cut cleanly (kind 'deadline', still "
        "pending on the next resume)",
    )
    sweep.add_argument(
        "--quarantine",
        action="store_true",
        help="skip cells with a durable failure record from a prior run "
        "instead of re-judging them (kind 'quarantined')",
    )
    sweep.add_argument(
        "--breaker-threshold",
        type=int,
        default=None,
        help="per-workload circuit breaker: after N final failures with no "
        "successes, skip the workload's remaining cells",
    )
    sweep.add_argument(
        "--jitter-seed",
        type=int,
        default=None,
        help="apply seeded equal-jitter to retry backoff (deterministic "
        "per cell and attempt)",
    )
    sweep.add_argument("--check-invariants", action="store_true")
    sweep.add_argument(
        "--backend",
        default=None,
        choices=available_backends(),
        help="execution backend for the cells (default $REPRO_SIM_BACKEND "
        "or 'reference'); 'batch' groups cells sharing a trace into one "
        "worker unit with a single decode",
    )
    sweep.add_argument(
        "--surrogate",
        default=None,
        choices=["off", "triage", "only"],
        help="surrogate tier: 'triage' settles tight-CI cells from the "
        "model and simulates the rest; 'only' settles everything "
        "(default $REPRO_SURROGATE or off)",
    )
    sweep.add_argument(
        "--surrogate-model",
        default=None,
        help="trained model artifact for the surrogate tier "
        "(default $REPRO_SURROGATE_MODEL)",
    )
    sweep.set_defaults(func=_cmd_sweep)

    serve = sub.add_parser(
        "serve",
        help="simulation-as-a-service HTTP server (wire schema v1, store "
        "dedupe before scheduling, polling + SSE progress)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8321,
        help="TCP port to bind (0 = an ephemeral port, printed at startup)",
    )
    serve.add_argument(
        "--store",
        default=os.environ.get(ENV_STORE, DEFAULT_STORE),
        help=f"shared result store directory (default ${ENV_STORE} or "
        f"{DEFAULT_STORE}) — the same store 'repro sweep' writes, so local "
        "and remote results dedupe against each other",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes per job ($REPRO_SWEEP_WORKERS)",
    )
    serve.add_argument("--timeout", type=float, default=None)
    serve.add_argument("--retries", type=int, default=None)
    serve.add_argument(
        "--dispatchers",
        type=int,
        default=None,
        help="concurrent dispatch threads — jobs run at once "
        "($REPRO_SERVE_DISPATCHERS, default 2)",
    )
    serve.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        help="seconds before a crashed peer's cell claims become "
        "reclaimable when several servers share one store "
        "($REPRO_SERVE_LEASE_TTL, default 300)",
    )
    serve.add_argument(
        "--surrogate-model",
        default=None,
        help="trained surrogate model artifact: enables /v1/predict "
        "(default $REPRO_SURROGATE_MODEL)",
    )
    serve.add_argument(
        "--surrogate",
        default=None,
        choices=["off", "triage", "only"],
        help="let submitted sweeps settle cells from the surrogate "
        "(default $REPRO_SURROGATE or off; /v1/predict works either way)",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit a (workloads x predictors) grid to a repro serve "
        "instance and wait for it",
    )
    submit.add_argument(
        "--server",
        default="http://127.0.0.1:8321",
        help="base URL of the repro serve instance",
    )
    submit.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workload names (default: the whole suite)",
    )
    submit.add_argument(
        "--predictors", default="store-sets,nosq,mdp-tage,mdp-tage-s,phast,ideal"
    )
    submit.add_argument("--subset", type=int, default=None)
    submit.add_argument("--num-ops", type=int, default=num_ops_default)
    submit.add_argument("--core", default="alderlake", choices=sorted(GENERATIONS))
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument("--check-invariants", action="store_true")
    submit.add_argument(
        "--backend", default=None, choices=available_backends()
    )
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="print the submission receipt and return without polling",
    )
    submit.add_argument(
        "--wait-timeout",
        type=float,
        default=None,
        help="give up polling after this many seconds (exit nonzero)",
    )
    submit.add_argument(
        "--tenant",
        default=None,
        help="tenant id to attribute the submission to (sent as a bearer "
        "token and in the wire 'ext' escape hatch; the server applies "
        "that tenant's quota policy)",
    )
    submit.set_defaults(func=_cmd_submit)

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection soak: clean sweep, chaos sweep, then gate on "
        "completion + classification + bit-identical results (exit 1 on "
        "any problem)",
    )
    chaos.add_argument("--predictors", default="store-sets,phast")
    chaos.add_argument("--num-ops", type=int, default=num_ops_default)
    chaos.add_argument("--subset", type=int, default=2)
    chaos.add_argument("--core", default="alderlake", choices=sorted(GENERATIONS))
    chaos.add_argument(
        "--rate",
        type=float,
        default=0.2,
        help="total transient fault rate for the generated plan "
        "(ignored with --plan)",
    )
    chaos.add_argument(
        "--seed", type=int, default=0, help="fault-plan seed (ignored with --plan)"
    )
    chaos.add_argument(
        "--max-faults",
        type=int,
        default=None,
        help="cap on total injected faults (ignored with --plan)",
    )
    chaos.add_argument(
        "--plan",
        default=None,
        help="JSON FaultPlan file; overrides --rate/--seed/--max-faults",
    )
    chaos.add_argument(
        "--seed-trace",
        type=int,
        default=None,
        help="override every workload's trace seed",
    )
    chaos.add_argument(
        "--store",
        default=os.path.join(os.environ.get(ENV_STORE, DEFAULT_STORE), "chaos-soak"),
        help="soak root; baseline/ and chaos/ stores are created under it",
    )
    chaos.add_argument("--timeout", type=float, default=30.0)
    chaos.add_argument(
        "--retries",
        type=int,
        default=4,
        help="retries per cell — must exceed the fault depth a transient "
        "plan can stack on one cell",
    )
    chaos.add_argument("--workers", type=int, default=None)
    chaos.add_argument(
        "--backoff-base",
        type=float,
        default=0.05,
        help="retry backoff base in seconds (small: injected faults are "
        "not real infrastructure weather)",
    )
    chaos.set_defaults(func=_cmd_chaos)

    sample = sub.add_parser(
        "sample",
        help="checkpointed sampled run: functional warming + representative "
        "intervals with sampling-error bars",
    )
    sample.add_argument("workload")
    sample.add_argument("predictor", choices=available_predictors())
    sample.add_argument("--num-ops", type=int, default=num_ops_default)
    sample.add_argument("--core", default="alderlake", choices=sorted(GENERATIONS))
    sample.add_argument(
        "--seed", type=int, default=None, help="override the workload trace seed"
    )
    sample.add_argument(
        "--interval-ops",
        type=int,
        default=None,
        help="measured ops per representative ($REPRO_SAMPLE_INTERVAL_OPS)",
    )
    sample.add_argument(
        "--warmup-ops",
        type=int,
        default=None,
        help="detailed-warmup lead per interval ($REPRO_SAMPLE_WARMUP_OPS)",
    )
    sample.add_argument(
        "--clusters",
        type=int,
        default=5,
        help="maximum SimPoint clusters (= representative intervals)",
    )
    sample.add_argument(
        "--cluster-seed", type=int, default=0, help="k-means clustering seed"
    )
    sample.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the interval fan-out (1 = inline)",
    )
    sample.add_argument(
        "--trace-store",
        default=_default_trace_store(),
        help="trace artifact store directory ($REPRO_TRACE_STORE)",
    )
    sample.add_argument(
        "--checkpoint-store",
        default=os.path.join(os.environ.get(ENV_STORE, DEFAULT_STORE), "checkpoints"),
        help="checkpoint artifact store directory",
    )
    sample.add_argument("--check-invariants", action="store_true")
    sample.set_defaults(func=_cmd_sample)

    trace = sub.add_parser(
        "trace",
        help="manage the compiled trace artifact store",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_store_default = _default_trace_store()

    compile_cmd = trace_sub.add_parser(
        "compile",
        help="compile workload traces into binary artifacts (and reset the "
        "rebuild-marker baseline)",
    )
    compile_cmd.add_argument(
        "--store",
        default=trace_store_default,
        help=f"trace store directory (default ${ENV_TRACE_STORE} or "
        f"{DEFAULT_STORE}/traces)",
    )
    compile_cmd.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workload names (default: the whole suite)",
    )
    compile_cmd.add_argument("--subset", type=int, default=None)
    compile_cmd.add_argument("--num-ops", type=int, default=num_ops_default)
    compile_cmd.add_argument("--seed", type=int, default=None)
    compile_cmd.set_defaults(func=_cmd_trace_compile)

    ls_cmd = trace_sub.add_parser("ls", help="list stored trace artifacts")
    ls_cmd.add_argument("--store", default=trace_store_default)
    ls_cmd.set_defaults(func=_cmd_trace_ls)

    verify_cmd = trace_sub.add_parser(
        "verify",
        help="check every artifact decodes cleanly (--deep: also regenerate "
        "and compare op-for-op); exit 1 on problems",
    )
    verify_cmd.add_argument("--store", default=trace_store_default)
    verify_cmd.add_argument("--deep", action="store_true")
    verify_cmd.set_defaults(func=_cmd_trace_verify)

    backends = sub.add_parser(
        "backends",
        help="inspect the execution-backend registry",
    )
    backends_sub = backends.add_subparsers(dest="backends_command", required=True)
    backends_ls = backends_sub.add_parser(
        "ls", help="list registered execution backends"
    )
    backends_ls.set_defaults(func=_cmd_backends_ls)

    workloads = sub.add_parser("workloads", help="list workload profiles")
    workloads.set_defaults(func=_cmd_workloads)

    predictors = sub.add_parser("predictors", help="list predictors")
    predictors.set_defaults(func=_cmd_predictors)

    table2 = sub.add_parser("table2", help="print the reproduced Table II")
    table2.set_defaults(func=_cmd_table2)

    export = sub.add_parser("export", help="run a sweep and write JSON records")
    export.add_argument("output", help="destination .json path")
    export.add_argument(
        "--predictors", default="store-sets,nosq,mdp-tage,mdp-tage-s,phast,ideal"
    )
    export.add_argument("--num-ops", type=int, default=num_ops_default)
    export.add_argument("--subset", type=int, default=None)
    export.add_argument("--core", default="alderlake", choices=sorted(GENERATIONS))
    export.add_argument(
        "--seed", type=int, default=None, help="override every workload's trace seed"
    )
    export.add_argument(
        "--provenance",
        action="store_true",
        help="write full provenance records (RunSpec wire dict, generator "
        "version, interval windows) instead of bare results — the format "
        "'repro surrogate build --provenance' consumes",
    )
    export.add_argument(
        "--interval-ops",
        type=int,
        default=0,
        help="with --provenance: also record per-window interval metrics "
        "every N committed ops (0 = none)",
    )
    export.set_defaults(func=_cmd_export)

    surrogate = sub.add_parser(
        "surrogate",
        help="learned IPC/MPKI surrogate: build datasets, train, evaluate, "
        "predict (see docs/surrogate.md)",
    )
    surrogate_sub = surrogate.add_subparsers(dest="surrogate_cmd", required=True)

    surrogate_build = surrogate_sub.add_parser(
        "build",
        help="featurize completed cells into a content-addressed dataset",
    )
    surrogate_build.add_argument(
        "--store",
        default=os.environ.get(ENV_STORE, DEFAULT_STORE),
        help=f"result store to read (default ${ENV_STORE} or {DEFAULT_STORE})",
    )
    surrogate_build.add_argument(
        "--provenance",
        default=None,
        help="build from a 'repro export --provenance' file instead of "
        "the store",
    )
    surrogate_build.add_argument(
        "--output",
        default=None,
        help="destination path or directory (default <store>/datasets/)",
    )
    surrogate_build.set_defaults(func=_cmd_surrogate_build)

    surrogate_train = surrogate_sub.add_parser(
        "train", help="fit the bagged-ridge ensemble and calibrate intervals"
    )
    surrogate_train.add_argument("--dataset", required=True)
    surrogate_train.add_argument(
        "--output",
        default=None,
        help="destination path or directory (default: next to the dataset)",
    )
    surrogate_train.add_argument(
        "--members",
        type=int,
        default=surrogate_members_default,
        help="ensemble size ($REPRO_SURROGATE_MEMBERS, default 8)",
    )
    surrogate_train.add_argument(
        "--ridge",
        type=float,
        default=surrogate_ridge_default,
        help="ridge regularisation strength ($REPRO_SURROGATE_RIDGE)",
    )
    surrogate_train.add_argument(
        "--level",
        type=float,
        default=surrogate_level_default,
        help="nominal CI coverage in [0.5, 1) ($REPRO_SURROGATE_LEVEL)",
    )
    surrogate_train.add_argument(
        "--train-seed",
        type=int,
        default=surrogate_seed_default,
        help="bootstrap RNG seed ($REPRO_SURROGATE_SEED)",
    )
    surrogate_train.set_defaults(func=_cmd_surrogate_train)

    surrogate_eval = surrogate_sub.add_parser(
        "eval",
        help="honest error + CI coverage on a held-out split, with "
        "optional CI gates (exit 1 when a gate fails)",
    )
    surrogate_eval.add_argument("--dataset", required=True)
    surrogate_eval.add_argument("--model", required=True)
    surrogate_eval.add_argument(
        "--split", default="heldout", choices=["heldout", "calib", "train"]
    )
    surrogate_eval.add_argument("--json", action="store_true")
    surrogate_eval.add_argument(
        "--max-ipc-mape",
        type=float,
        default=None,
        help="gate: fail when held-out IPC MAPE exceeds this",
    )
    surrogate_eval.add_argument(
        "--max-mpki-mae",
        type=float,
        default=None,
        help="gate: fail when held-out violation-MPKI MAE exceeds this",
    )
    surrogate_eval.add_argument(
        "--min-coverage",
        type=float,
        default=None,
        help="gate: fail when empirical CI coverage of either target "
        "falls below this (use the nominal level)",
    )
    surrogate_eval.set_defaults(func=_cmd_surrogate_eval)

    surrogate_predict = surrogate_sub.add_parser(
        "predict", help="score a grid from the model alone (no simulation)"
    )
    surrogate_predict.add_argument("--model", required=True)
    surrogate_predict.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workload names (default: the whole suite)",
    )
    surrogate_predict.add_argument(
        "--predictors", default="store-sets,nosq,mdp-tage,mdp-tage-s,phast"
    )
    surrogate_predict.add_argument("--subset", type=int, default=None)
    surrogate_predict.add_argument("--num-ops", type=int, default=num_ops_default)
    surrogate_predict.add_argument(
        "--core", default="alderlake", choices=sorted(GENERATIONS)
    )
    surrogate_predict.add_argument("--seed", type=int, default=None)
    surrogate_predict.add_argument("--json", action="store_true")
    surrogate_predict.set_defaults(func=_cmd_surrogate_predict)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
