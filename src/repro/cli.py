"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — simulate one (workload, predictor) pair and print the result.
* ``suite`` — run a predictor roster over workloads, print Fig. 15-style
  normalised IPC and the mean-speedup summary.
* ``workloads`` — list the synthetic SPEC CPU 2017-like profiles.
* ``predictors`` — list the predictor registry with storage budgets.
* ``table2`` — print the reproduced Table II (configurations/storage/energy).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.export import dump_results
from repro.analysis.report import format_table
from repro.common.stats import geometric_mean
from repro.core.config import GENERATIONS, CoreConfig
from repro.mdp.storage import format_table2
from repro.sim.experiment import ExperimentGrid
from repro.sim.simulator import DEFAULT_NUM_OPS, PREDICTOR_FACTORIES, simulate
from repro.workloads.spec2017 import SPEC_PROFILES, spec_suite


def _core_config(name: str) -> CoreConfig:
    try:
        return GENERATIONS[name]
    except KeyError:
        raise SystemExit(
            f"unknown core {name!r}; available: {', '.join(sorted(GENERATIONS))}"
        )


def _cmd_run(args: argparse.Namespace) -> int:
    result = simulate(
        args.workload,
        args.predictor,
        config=_core_config(args.core),
        num_ops=args.num_ops,
    )
    print(result.summary())
    stats = result.pipeline
    print(
        f"cycles={stats.cycles}  committed={stats.committed_uops}  "
        f"loads={stats.loads}  stores={stats.stores}  "
        f"branches={stats.branches} (mispredicted {stats.branch_mispredicts})"
    )
    print(
        f"violations={stats.violations}  false_positives={stats.false_positives}  "
        f"correct_waits={stats.correct_waits}  forwarded={stats.forwarded_loads}  "
        f"partial={stats.partial_loads}"
    )
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    workloads = spec_suite(subset=args.subset)
    predictors: List[str] = args.predictors.split(",")
    for name in predictors:
        if name not in PREDICTOR_FACTORIES:
            raise SystemExit(f"unknown predictor {name!r}")
    grid = ExperimentGrid(num_ops=args.num_ops)
    config = _core_config(args.core)
    ideal = grid.run_suite(workloads, "ideal", config)

    rows = []
    normalized = {name: [] for name in predictors}
    for workload in workloads:
        row: List[object] = [workload]
        for name in predictors:
            ratio = grid.run(workload, name, config).ipc / ideal[workload].ipc
            normalized[name].append(ratio)
            row.append(ratio)
        rows.append(row)
    rows.append(["GEOMEAN"] + [geometric_mean(normalized[n]) for n in predictors])
    print(
        format_table(
            ["workload"] + predictors,
            rows,
            title=f"IPC normalised to ideal ({config.name}, {args.num_ops} ops)",
        )
    )
    return 0


def _cmd_workloads(_: argparse.Namespace) -> int:
    rows = [
        [name, profile.seed, profile.description]
        for name, profile in sorted(SPEC_PROFILES.items())
    ]
    print(format_table(["workload", "seed", "character"], rows))
    return 0


def _cmd_predictors(_: argparse.Namespace) -> int:
    rows = []
    for name in sorted(PREDICTOR_FACTORIES):
        predictor = PREDICTOR_FACTORIES[name]()
        kb = predictor.storage_kb()
        rows.append([name, f"{kb:.2f}" if kb else "-", type(predictor).__name__])
    print(format_table(["predictor", "KB", "class"], rows))
    return 0


def _cmd_table2(_: argparse.Namespace) -> int:
    print(format_table2())
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    workloads = spec_suite(subset=args.subset)
    predictors = args.predictors.split(",")
    for name in predictors:
        if name not in PREDICTOR_FACTORIES:
            raise SystemExit(f"unknown predictor {name!r}")
    grid = ExperimentGrid(num_ops=args.num_ops)
    config = _core_config(args.core)
    results = [
        grid.run(workload, predictor, config)
        for workload in workloads
        for predictor in predictors
    ]
    dump_results(results, args.output)
    print(f"wrote {len(results)} records to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PHAST (HPCA 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="simulate one workload/predictor pair")
    run.add_argument("workload")
    run.add_argument("predictor", choices=sorted(PREDICTOR_FACTORIES))
    run.add_argument("--num-ops", type=int, default=DEFAULT_NUM_OPS)
    run.add_argument("--core", default="alderlake", choices=sorted(GENERATIONS))
    run.set_defaults(func=_cmd_run)

    suite = sub.add_parser("suite", help="predictor roster over the suite")
    suite.add_argument(
        "--predictors", default="store-sets,nosq,mdp-tage,mdp-tage-s,phast"
    )
    suite.add_argument("--num-ops", type=int, default=DEFAULT_NUM_OPS)
    suite.add_argument("--subset", type=int, default=None)
    suite.add_argument("--core", default="alderlake", choices=sorted(GENERATIONS))
    suite.set_defaults(func=_cmd_suite)

    workloads = sub.add_parser("workloads", help="list workload profiles")
    workloads.set_defaults(func=_cmd_workloads)

    predictors = sub.add_parser("predictors", help="list predictors")
    predictors.set_defaults(func=_cmd_predictors)

    table2 = sub.add_parser("table2", help="print the reproduced Table II")
    table2.set_defaults(func=_cmd_table2)

    export = sub.add_parser("export", help="run a sweep and write JSON records")
    export.add_argument("output", help="destination .json path")
    export.add_argument(
        "--predictors", default="store-sets,nosq,mdp-tage,mdp-tage-s,phast,ideal"
    )
    export.add_argument("--num-ops", type=int, default=DEFAULT_NUM_OPS)
    export.add_argument("--subset", type=int, default=None)
    export.add_argument("--core", default="alderlake", choices=sorted(GENERATIONS))
    export.set_defaults(func=_cmd_export)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
