"""Experiment grids: memoised sweeps, durably cached and fault-tolerant.

Every figure in the paper is a (workload x predictor x configuration) sweep;
:class:`ExperimentGrid` runs those cells once and caches the results, so a
benchmark session that regenerates several figures does not re-simulate
shared cells (e.g. the ideal baseline appears in Figs. 2, 6, 7, 11-15).

Cells are keyed by the full content hash from :mod:`repro.harness.store` —
every :class:`~repro.core.config.CoreConfig` field participates, so two
configs differing in any knob (not just ``name``/``forwarding_filter``)
never collide. With a :class:`~repro.harness.store.ResultStore` attached,
completed cells also persist across processes: a crashed or killed session
resumes from the durable cache, and ``tolerant=True`` suites record failed
cells in a manifest instead of aborting the whole figure.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.common.stats import geometric_mean
from repro.core.config import CoreConfig
from repro.harness.failures import CellFailure, FailureKind
from repro.harness.store import ResultStore
from repro.mdp.base import MDPredictor
from repro.sim.invariants import SimInvariantError
from repro.sim.metrics import SimResult
from repro.sim.simulator import default_num_ops, make_predictor, run_spec
from repro.sim.spec import RunSpec


def normalize_to_ideal(
    results: Dict[str, SimResult], ideal: Dict[str, SimResult]
) -> Dict[str, float]:
    """Per-workload IPC normalised to the ideal predictor's IPC."""
    normalised = {}
    for name, result in results.items():
        baseline = ideal[name]
        normalised[name] = result.ipc / baseline.ipc
    return normalised


class ExperimentGrid:
    """Memoised (workload, predictor, core, length, seed) simulation runner.

    ``store`` optionally layers a durable on-disk cache under the in-process
    one — results survive crashes and are shared across sessions.
    """

    def __init__(
        self,
        num_ops: Optional[int] = None,
        store: Optional[ResultStore] = None,
    ) -> None:
        self.num_ops = num_ops or default_num_ops()
        self.store = store
        self._cache: Dict[str, SimResult] = {}
        #: Failures recorded by tolerant suite runs (cleared per run_suite).
        self.failures: List[CellFailure] = []

    def run(
        self,
        workload_name: str,
        predictor: str,
        config: Optional[CoreConfig] = None,
        predictor_factory: Optional[Callable[[], MDPredictor]] = None,
        num_ops: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> SimResult:
        """Run one cell, or return its cached result.

        ``predictor`` is the cache label; ``predictor_factory`` overrides how
        the instance is built (for parameter sweeps where the label encodes
        the variant, e.g. ``"unlimited-nosq-h12"``). ``seed`` overrides the
        workload's trace seed (cell-for-cell failure reproduction).
        """
        spec = RunSpec(
            workload=workload_name,
            predictor=predictor,
            config=config or CoreConfig(),
            num_ops=num_ops or self.num_ops,
            seed=seed,
            trace_dir=self._trace_dir(),
        )
        key = spec.key()
        hit = self._cache.get(key.digest)
        if hit is not None:
            return hit
        if self.store is not None:
            stored = self.store.get(key)
            if stored is not None:
                self._cache[key.digest] = stored
                return stored
        instance = (
            predictor_factory() if predictor_factory else make_predictor(predictor)
        )
        result = run_spec(spec.with_overrides(predictor=instance))
        self._cache[key.digest] = result
        if self.store is not None:
            self.store.put(key, result)
        return result

    def _trace_dir(self) -> Optional[str]:
        """Compiled traces live beside the durable results, when there are any."""
        if self.store is None:
            return None
        return str(self.store.root / "traces")

    def run_suite(
        self,
        workloads: Iterable[str],
        predictor: str,
        config: Optional[CoreConfig] = None,
        predictor_factory: Optional[Callable[[], MDPredictor]] = None,
        tolerant: bool = False,
    ) -> Dict[str, SimResult]:
        """Run a predictor over many workloads; returns workload -> result.

        With ``tolerant=True`` a failing cell is recorded in
        :attr:`failures` (and the attached store's manifest, if any) and the
        suite completes with the cells that succeeded, instead of one bad
        cell aborting the whole figure.
        """
        if not tolerant:
            return {
                name: self.run(name, predictor, config, predictor_factory)
                for name in workloads
            }
        self.failures = []
        results: Dict[str, SimResult] = {}
        core = config or CoreConfig()
        for name in workloads:
            try:
                results[name] = self.run(name, predictor, config, predictor_factory)
            except Exception as exc:  # noqa: BLE001 — degrade, don't abort
                kind = (
                    FailureKind.INVARIANT
                    if isinstance(exc, SimInvariantError)
                    else FailureKind.ERROR
                )
                self.failures.append(
                    CellFailure(
                        kind=kind,
                        message=f"{type(exc).__name__}: {exc}",
                        cell={
                            "workload": name,
                            "predictor": predictor,
                            "core": core.name,
                            "num_ops": self.num_ops,
                        },
                    )
                )
        if self.failures and self.store is not None:
            self.store.write_manifest(self.failures)
        return results

    def mean_normalized_ipc(
        self,
        workloads: List[str],
        predictor: str,
        config: Optional[CoreConfig] = None,
        predictor_factory: Optional[Callable[[], MDPredictor]] = None,
    ) -> float:
        """Geometric-mean IPC normalised to the ideal predictor (paper metric)."""
        results = self.run_suite(workloads, predictor, config, predictor_factory)
        ideal = self.run_suite(workloads, "ideal", config)
        return geometric_mean(list(normalize_to_ideal(results, ideal).values()))

    def mean_mpki(
        self,
        workloads: List[str],
        predictor: str,
        config: Optional[CoreConfig] = None,
        predictor_factory: Optional[Callable[[], MDPredictor]] = None,
    ) -> Tuple[float, float]:
        """(mean violation MPKI, mean false-positive MPKI) over workloads."""
        results = self.run_suite(workloads, predictor, config, predictor_factory)
        violations = [result.violation_mpki for result in results.values()]
        false_positives = [result.false_positive_mpki for result in results.values()]
        return (
            sum(violations) / len(violations),
            sum(false_positives) / len(false_positives),
        )
