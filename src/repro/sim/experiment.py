"""Experiment grids with in-process memoisation.

Every figure in the paper is a (workload x predictor x configuration) sweep;
:class:`ExperimentGrid` runs those cells once and caches the results, so a
benchmark session that regenerates several figures does not re-simulate
shared cells (e.g. the ideal baseline appears in Figs. 2, 6, 7, 11-15).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.common.stats import geometric_mean
from repro.core.config import CoreConfig
from repro.mdp.base import MDPredictor
from repro.sim.metrics import SimResult
from repro.sim.simulator import DEFAULT_NUM_OPS, make_predictor, simulate


def normalize_to_ideal(
    results: Dict[str, SimResult], ideal: Dict[str, SimResult]
) -> Dict[str, float]:
    """Per-workload IPC normalised to the ideal predictor's IPC."""
    normalised = {}
    for name, result in results.items():
        baseline = ideal[name]
        normalised[name] = result.ipc / baseline.ipc
    return normalised


class ExperimentGrid:
    """Memoised (workload, predictor, core, length) simulation runner."""

    def __init__(self, num_ops: Optional[int] = None) -> None:
        self.num_ops = num_ops or DEFAULT_NUM_OPS
        self._cache: Dict[Tuple[str, str, str, int], SimResult] = {}

    def run(
        self,
        workload_name: str,
        predictor: str,
        config: Optional[CoreConfig] = None,
        predictor_factory: Optional[Callable[[], MDPredictor]] = None,
        num_ops: Optional[int] = None,
    ) -> SimResult:
        """Run one cell, or return its cached result.

        ``predictor`` is the cache label; ``predictor_factory`` overrides how
        the instance is built (for parameter sweeps where the label encodes
        the variant, e.g. ``"unlimited-nosq-h12"``).
        """
        core = config or CoreConfig()
        length = num_ops or self.num_ops
        key = (workload_name, predictor, core.name + (
            "" if core.forwarding_filter else "-nofwd"
        ), length)
        if key not in self._cache:
            instance = (
                predictor_factory() if predictor_factory else make_predictor(predictor)
            )
            self._cache[key] = simulate(
                workload_name, instance, config=core, num_ops=length
            )
        return self._cache[key]

    def run_suite(
        self,
        workloads: Iterable[str],
        predictor: str,
        config: Optional[CoreConfig] = None,
        predictor_factory: Optional[Callable[[], MDPredictor]] = None,
    ) -> Dict[str, SimResult]:
        """Run a predictor over many workloads; returns workload -> result."""
        return {
            name: self.run(name, predictor, config, predictor_factory)
            for name in workloads
        }

    def mean_normalized_ipc(
        self,
        workloads: List[str],
        predictor: str,
        config: Optional[CoreConfig] = None,
        predictor_factory: Optional[Callable[[], MDPredictor]] = None,
    ) -> float:
        """Geometric-mean IPC normalised to the ideal predictor (paper metric)."""
        results = self.run_suite(workloads, predictor, config, predictor_factory)
        ideal = self.run_suite(workloads, "ideal", config)
        return geometric_mean(list(normalize_to_ideal(results, ideal).values()))

    def mean_mpki(
        self,
        workloads: List[str],
        predictor: str,
        config: Optional[CoreConfig] = None,
        predictor_factory: Optional[Callable[[], MDPredictor]] = None,
    ) -> Tuple[float, float]:
        """(mean violation MPKI, mean false-positive MPKI) over workloads."""
        results = self.run_suite(workloads, predictor, config, predictor_factory)
        violations = [result.violation_mpki for result in results.values()]
        false_positives = [result.false_positive_mpki for result in results.values()]
        return (
            sum(violations) / len(violations),
            sum(false_positives) / len(false_positives),
        )
