"""The canonical description of one simulation run.

``simulate()`` historically took nine loose parameters; the harness's
``CellSpec`` duplicated five of them; the result-store key and the trace
artifact key each re-derived their fields independently. :class:`RunSpec`
unifies them: one frozen dataclass that the sim API executes directly
(``simulate(spec)``), the harness ships to worker processes, and both
content-hash keys (:func:`RunSpec.key` for the result store,
:func:`RunSpec.trace_key` for the trace artifact store) derive from — so
the three can never silently disagree about what a "run" is.

Identity vs. execution: only ``workload``, ``predictor``, ``config``,
``num_ops`` and ``seed`` participate in the result-store key. The remaining
fields (warmup, probes, invariant checking, interval metrics,
``trace_dir``) affect *how* a run executes or what it observes, not which
cell it is — matching the pre-existing ``cell_key`` semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple, Union

from repro.core.config import CoreConfig
from repro.core.probes import Probe
from repro.frontend.branch_predictors import BranchPredictor
from repro.mdp.base import MDPredictor
from repro.workloads.generator import WorkloadProfile


@dataclass(frozen=True)
class RunSpec:
    """Everything needed to run (and identify) one simulation.

    Attributes:
        workload: profile name (e.g. ``"511.povray"``) or a full
            :class:`~repro.workloads.generator.WorkloadProfile`.
        predictor: registry name (e.g. ``"phast"``) or a predictor instance.
            Instances make the spec non-picklable and non-cacheable by name;
            prefer names plus :func:`repro.sim.simulator.register_predictor`.
        config: core configuration; None means the default
            :class:`~repro.core.config.CoreConfig`.
        num_ops: dynamic trace length; None defers to
            :func:`repro.sim.simulator.default_num_ops` at run time.
        warmup_ops: ops excluded from statistics; None defers to
            :func:`repro.sim.simulator.default_warmup_ops` at run time.
        seed: workload seed override (None = the profile's own seed).
        check_invariants: enable simulator self-checks; None defers to
            ``REPRO_CHECK_INVARIANTS``.
        probes: extra observers attached to the pipeline's probe bus.
        interval_ops: window size for interval metrics (None = off).
        branch_predictor: front-end override (None = a fresh TAGE).
        trace_dir: directory of a trace artifact store to consult before
            building the trace (None = ``REPRO_TRACE_STORE`` or no store).
        backend: execution backend name (``"reference"``, ``"batch"``, or a
            registered third backend); None defers to ``REPRO_SIM_BACKEND``
            at run time. Like ``trace_dir``, the backend is *execution*
            strategy, not identity — backends are bit-identical by contract
            (the golden fixture enforces it), so results from different
            backends share one result-store key and interchange freely.
    """

    workload: Union[str, WorkloadProfile]
    predictor: Union[str, MDPredictor]
    config: Optional[CoreConfig] = None
    num_ops: Optional[int] = None
    warmup_ops: Optional[int] = None
    seed: Optional[int] = None
    check_invariants: Optional[bool] = None
    probes: Tuple[Probe, ...] = ()
    interval_ops: Optional[int] = None
    branch_predictor: Optional[BranchPredictor] = None
    trace_dir: Optional[str] = None
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.probes, tuple):
            object.__setattr__(self, "probes", tuple(self.probes))
        if self.num_ops is not None and self.num_ops <= 0:
            raise ValueError(f"num_ops must be positive, got {self.num_ops}")
        if self.warmup_ops is not None and self.warmup_ops < 0:
            raise ValueError(f"warmup_ops must be >= 0, got {self.warmup_ops}")

    # -------------------------------------------------------- resolution --

    @property
    def workload_name(self) -> str:
        if isinstance(self.workload, str):
            return self.workload
        return self.workload.name

    @property
    def predictor_label(self) -> str:
        """The registry/cache label for the predictor.

        For instances this is the object's ``name`` — callers sweeping
        parameter variants must encode the variant in the label themselves
        (as ``ExperimentGrid`` already requires).
        """
        if isinstance(self.predictor, str):
            return self.predictor
        return self.predictor.name

    def resolved_config(self) -> CoreConfig:
        return self.config or CoreConfig()

    def resolved_profile(self) -> WorkloadProfile:
        """The concrete workload profile, with any seed override applied."""
        if isinstance(self.workload, str):
            from repro.workloads.spec2017 import workload

            return workload(self.workload, seed=self.seed)
        profile = self.workload
        if self.seed is not None and self.seed != profile.seed:
            return replace(profile, seed=self.seed)
        return profile

    def resolved_num_ops(self) -> int:
        from repro.sim.simulator import default_num_ops

        return self.num_ops or default_num_ops()

    def resolved_warmup_ops(self) -> int:
        from repro.sim.simulator import default_warmup_ops

        return (
            default_warmup_ops() if self.warmup_ops is None else self.warmup_ops
        )

    def resolved_backend(self) -> str:
        """The backend name this run executes on (``REPRO_SIM_BACKEND`` aware).

        Resolved at call time like every other knob, and validated against
        the backend registry — an unknown name (in the spec or the
        environment) is an error naming the bad value, never a silent
        fallback to the reference interpreter.
        """
        from repro.sim.backends import default_backend_name, validate_backend_name

        if self.backend is None:
            return default_backend_name()
        return validate_backend_name(self.backend)

    # --------------------------------------------------------------- keys --

    def key(self):
        """Result-store identity of this run (a ``CellKey``).

        Matches the digests the harness has always produced: ``num_ops`` is
        keyed *raw* (0 = "the default at run time"), so existing on-disk
        stores stay valid.
        """
        # Imported here: the harness layer sits above sim, but the key
        # schema lives with the store that owns the on-disk format.
        from repro.harness.store import cell_key

        return cell_key(
            self.workload_name,
            self.predictor_label,
            self.resolved_config(),
            self.num_ops or 0,
            self.seed,
        )

    def trace_key(self):
        """Artifact-store identity of this run's input trace (a ``TraceKey``).

        Unlike :meth:`key`, the trace key uses the *resolved* op count —
        the artifact is the concrete byte sequence, so "the default at run
        time" must be pinned to a number.
        """
        from repro.isa.artifacts import trace_key

        return trace_key(self.resolved_profile(), self.resolved_num_ops())

    # -------------------------------------------------------------- wire --

    def to_wire(self) -> dict:
        """Encode this spec as a versioned wire payload (schema v1).

        The payload is a sparse JSON-safe dict carrying ``"v": 1``; decoding
        it with :meth:`from_wire` on any host reproduces a spec with the
        identical :meth:`key`. Raises :class:`repro.api.wire.WireError` for
        specs that cannot cross a process boundary by name (predictor or
        probe instances, customised profiles). See ``docs/server.md``.
        """
        from repro.api.wire import spec_to_wire

        return spec_to_wire(self)

    @classmethod
    def from_wire(cls, payload) -> "RunSpec":
        """Decode a v1 wire payload (see :meth:`to_wire`) into a spec.

        Rejects missing/mismatched versions and unknown keys with a
        :class:`repro.api.wire.WireError` naming the offending field.
        """
        from repro.api.wire import spec_from_wire

        return spec_from_wire(payload)

    # -------------------------------------------------------------- misc --

    def with_overrides(self, **changes) -> "RunSpec":
        """A copy with the given fields replaced (``dataclasses.replace``)."""
        return replace(self, **changes)

    def describe(self) -> dict:
        return dict(self.key().describe)
