"""One-call simulation entry point.

``simulate(RunSpec("511.povray", "phast"))`` builds the workload trace
(cached), the Alder Lake-like core, the TAGE front end and the named
predictor, runs the pipeline and returns a
:class:`~repro.sim.metrics.SimResult`.

Trace length defaults to :func:`default_num_ops` and can be raised globally
with the ``REPRO_TRACE_OPS`` environment variable for higher-fidelity runs
(the paper simulates 100M-instruction intervals; these profiles are
stationary, so tens of thousands of micro-ops reach steady state). The
environment is read at *call* time, so overrides set after import — by
harness worker subprocesses, or tests via ``monkeypatch.setenv`` — take
effect; the legacy ``DEFAULT_NUM_OPS``/``DEFAULT_WARMUP_OPS`` module
attributes resolve dynamically via PEP 562 for the same reason (but a
``from ... import DEFAULT_NUM_OPS`` still freezes the value at the import
site — prefer the functions).
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Dict, Iterable, Optional, Tuple, Union

from repro.common.env import env_int
from repro.common.lru import CacheInfo, LRUCache
from repro.core.config import CoreConfig
from repro.core.pipeline import Pipeline
from repro.core.probes import Probe
from repro.frontend.branch_predictors import BranchPredictor
from repro.frontend.tage import TAGEPredictor
from repro.isa.artifacts import TraceStore, default_trace_store, trace_key
from repro.isa.trace import Trace
from repro.mdp.base import MDPredictor
from repro.mdp.cht import CHTPredictor
from repro.mdp.ideal import AlwaysSpeculatePredictor, AlwaysWaitPredictor, IdealPredictor
from repro.mdp.mdp_tage import MDPTagePredictor
from repro.mdp.nosq import NoSQPredictor
from repro.mdp.omnipredictor import OmniPredictor
from repro.mdp.perceptron import PerceptronMDPredictor
from repro.mdp.phast import PHASTPredictor
from repro.mdp.store_sets import StoreSetsPredictor
from repro.mdp.store_vector import StoreVectorPredictor
from repro.mdp.unlimited import (
    UnlimitedMDPTagePredictor,
    UnlimitedNoSQPredictor,
    UnlimitedPHASTPredictor,
)
from repro.sim.intervals import IntervalMetricsProbe
from repro.sim.metrics import SimResult
from repro.sim.spec import RunSpec
from repro.workloads.generator import WorkloadProfile, build_trace
from repro.workloads.spec2017 import workload

_FALLBACK_NUM_OPS = 30000
_FALLBACK_WARMUP_OPS = 0


def default_num_ops() -> int:
    """Default dynamic trace length (REPRO_TRACE_OPS, read at call time)."""
    return env_int("REPRO_TRACE_OPS", _FALLBACK_NUM_OPS, min_value=1)


def default_warmup_ops() -> int:
    """Default warm-up exclusion (REPRO_WARMUP_OPS, read at call time)."""
    return env_int("REPRO_WARMUP_OPS", _FALLBACK_WARMUP_OPS, min_value=0)


def __getattr__(name: str) -> int:
    # PEP 562: the legacy module-level constants, resolved per access so the
    # environment is never frozen at import time.
    if name == "DEFAULT_NUM_OPS":
        return default_num_ops()
    if name == "DEFAULT_WARMUP_OPS":
        return default_warmup_ops()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

class _PredictorRegistry(Dict[str, Callable[[], MDPredictor]]):
    """The predictor registry, with deprecation warnings on raw mutation.

    Reads (lookup, iteration, membership) behave exactly like a dict.
    Writing through dict syntax still works but warns — use
    :func:`register_predictor` / :func:`unregister_predictor` instead, which
    validate the name and keep error messages consistent.
    """

    def _warn(self, how: str) -> None:
        warnings.warn(
            f"mutating PREDICTOR_FACTORIES via {how} is deprecated; "
            "use register_predictor()/unregister_predictor()",
            DeprecationWarning,
            stacklevel=3,
        )

    def __setitem__(self, name, factory) -> None:
        self._warn(f"PREDICTOR_FACTORIES[{name!r}] = ...")
        super().__setitem__(name, factory)

    def __delitem__(self, name) -> None:
        self._warn(f"del PREDICTOR_FACTORIES[{name!r}]")
        super().__delitem__(name)

    def update(self, *args, **kwargs) -> None:
        self._warn("update()")
        super().update(*args, **kwargs)

    def setdefault(self, name, default=None):
        self._warn("setdefault()")
        return super().setdefault(name, default)

    def pop(self, *args):
        self._warn("pop()")
        return super().pop(*args)

    def popitem(self):
        self._warn("popitem()")
        return super().popitem()

    def clear(self) -> None:
        self._warn("clear()")
        super().clear()


#: Named predictor factories (fresh instance per call). Read freely; mutate
#: via register_predictor()/unregister_predictor().
PREDICTOR_FACTORIES: Dict[str, Callable[[], MDPredictor]] = _PredictorRegistry(
    {
        "ideal": IdealPredictor,
        "always-speculate": AlwaysSpeculatePredictor,
        "always-wait": AlwaysWaitPredictor,
        "store-sets": StoreSetsPredictor,
        "store-vector": StoreVectorPredictor,
        "cht": CHTPredictor,
        "nosq": NoSQPredictor,
        "mdp-tage": MDPTagePredictor,
        "mdp-tage-s": MDPTagePredictor.tage_s,
        "phast": PHASTPredictor,
        "perceptron-mdp": PerceptronMDPredictor,
        "omnipredictor": OmniPredictor,
        "unlimited-phast": UnlimitedPHASTPredictor,
        "unlimited-nosq": UnlimitedNoSQPredictor,
        "unlimited-mdp-tage": UnlimitedMDPTagePredictor,
    }
)


def register_predictor(
    name: str,
    factory: Callable[[], MDPredictor],
    replace: bool = False,
) -> None:
    """Register a named predictor factory (fresh instance per call).

    Registered names work everywhere a built-in name does: ``simulate``,
    sweep cells, the CLI. Raises ``ValueError`` on a duplicate name unless
    ``replace=True``; the factory must be a zero-argument callable (bind
    parameters with ``functools.partial`` or a lambda).
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"predictor name must be a non-empty string, got {name!r}")
    if not callable(factory):
        raise TypeError(f"factory for {name!r} is not callable: {factory!r}")
    if name in PREDICTOR_FACTORIES and not replace:
        raise ValueError(
            f"predictor {name!r} is already registered; pass replace=True "
            "to override it"
        )
    dict.__setitem__(PREDICTOR_FACTORIES, name, factory)


def unregister_predictor(name: str) -> None:
    """Remove a registered predictor (KeyError if absent)."""
    dict.__delitem__(PREDICTOR_FACTORIES, name)


def available_predictors() -> Tuple[str, ...]:
    """Sorted names of every registered predictor."""
    return tuple(sorted(PREDICTOR_FACTORIES))


def make_predictor(name: str) -> MDPredictor:
    """Instantiate a predictor by registry name."""
    try:
        factory = PREDICTOR_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown predictor {name!r}; available: {', '.join(available_predictors())}"
        ) from None
    return factory()


def _trace_cache_size() -> int:
    return env_int("REPRO_TRACE_CACHE_SIZE", 32, min_value=1)


#: In-process trace cache: tier 1 of the three-tier lookup. Bounded so a
#: long-lived process sweeping many (profile, seed, num_ops) combinations
#: cannot grow without limit. Capacity comes from REPRO_TRACE_CACHE_SIZE
#: (default 32 ≈ one full SPEC suite), re-read on every ``get_trace`` so a
#: mid-process change takes effect — shrinking evicts LRU entries eagerly.
_TRACE_CACHE: LRUCache = LRUCache(maxsize=_trace_cache_size())


def get_trace(
    profile: Union[str, WorkloadProfile],
    num_ops: int,
    store: Optional[TraceStore] = None,
) -> Trace:
    """The deterministic trace for a profile, via the three-tier cache.

    Tiers, in order: the in-process LRU (``trace_cache_info()``), the
    on-disk artifact store (``store`` argument, else ``REPRO_TRACE_STORE``),
    and finally ``build_trace``. A build that happens *despite* a store
    being attached persists the new artifact and drops a rebuild marker —
    the observable signal that precompilation missed this trace (see
    :mod:`repro.isa.artifacts`).
    """
    if isinstance(profile, str):
        profile = workload(profile)
    # REPRO_TRACE_CACHE_SIZE is honoured at call time, not frozen at import:
    # a harness that tightens the cap mid-process sheds entries immediately.
    size = _trace_cache_size()
    if size != _TRACE_CACHE.maxsize:
        _TRACE_CACHE.resize(size)
    # The seed participates in the key: a --seed-overridden profile shares
    # its name with the default profile but is a different trace.
    key = (profile.name, profile.seed, num_ops)
    trace = _TRACE_CACHE.get(key)
    if trace is not None:
        return trace
    if store is None:
        store = default_trace_store()
    if store is not None:
        artifact_key = trace_key(profile, num_ops)
        trace = store.load(artifact_key)
        if trace is None:
            trace = build_trace(profile, num_ops)
            store.save(artifact_key, trace)
            store.record_rebuild(artifact_key)
    else:
        trace = build_trace(profile, num_ops)
    _TRACE_CACHE.put(key, trace)
    return trace


def clear_trace_cache() -> None:
    _TRACE_CACHE.clear()


def trace_cache_info() -> CacheInfo:
    """Hit/miss/occupancy counters of the in-process trace cache."""
    return _TRACE_CACHE.info()


def build_pipeline(
    spec: RunSpec, extra_probes: Iterable[Probe] = ()
) -> Tuple[Pipeline, Optional[IntervalMetricsProbe]]:
    """Construct the :class:`Pipeline` a :class:`RunSpec` describes.

    Resolves the core config, instantiates a string predictor through the
    registry, wires the spec's probes (plus ``extra_probes``), and — when
    ``spec.interval_ops`` is set — attaches an
    :class:`~repro.sim.intervals.IntervalMetricsProbe`, returned alongside
    the pipeline so the caller can harvest its windows. This is the single
    spec-to-pipeline translation shared by :func:`run_spec`, the SimPoint
    driver (:mod:`repro.analysis.simpoints`) and the sampled-simulation
    interval workers (:mod:`repro.sampling.sampled`).
    """
    core_config = spec.resolved_config()
    predictor = spec.predictor
    if isinstance(predictor, str):
        predictor = make_predictor(predictor)
    interval_probe: Optional[IntervalMetricsProbe] = None
    all_probes = list(spec.probes)
    all_probes.extend(extra_probes)
    if spec.interval_ops is not None:
        interval_probe = IntervalMetricsProbe(spec.interval_ops)
        all_probes.append(interval_probe)
    pipeline = Pipeline(
        config=core_config,
        predictor=predictor,
        branch_predictor=spec.branch_predictor or TAGEPredictor(),
        check_invariants=spec.check_invariants,
        probes=all_probes,
    )
    return pipeline, interval_probe


def run_spec(spec: RunSpec) -> SimResult:
    """Execute one :class:`~repro.sim.spec.RunSpec` and return its result.

    Dispatches through the backend registry (:mod:`repro.sim.backends`):
    ``spec.backend``, else ``REPRO_SIM_BACKEND`` (validated at call time),
    else the ``reference`` interpreter. Backends are bit-identical by
    contract, so the choice affects wall-clock only, never the result.
    """
    from repro.sim.backends import get_backend

    return get_backend(spec.resolved_backend()).run(spec)


def simulate_batch(
    specs: Iterable[RunSpec],
    on_result=None,
    on_heartbeat=None,
    heartbeat_ops: Optional[int] = None,
    backend: Optional[str] = None,
) -> Tuple[SimResult, ...]:
    """Execute many specs on one backend; results come back in spec order.

    The backend (``backend`` argument, else the first spec's
    ``resolved_backend()``, else the environment default) receives the whole
    sequence at once so it can share per-trace work — the ``batch`` backend
    decodes each distinct trace once and runs its shared front-end pass once
    for all cells of that trace. ``on_result(index, result)`` fires as each
    cell completes; ``on_heartbeat(index, window_dict)`` streams progress
    windows every ``heartbeat_ops`` committed ops for backends that support
    it.
    """
    from repro.sim.backends import get_backend

    spec_list = tuple(specs)
    if backend is None:
        backend = (
            spec_list[0].resolved_backend()
            if spec_list
            else RunSpec("511.povray", "ideal").resolved_backend()
        )
    chosen = get_backend(backend)
    return tuple(
        chosen.run_many(
            spec_list,
            on_result=on_result,
            on_heartbeat=on_heartbeat,
            heartbeat_ops=heartbeat_ops,
        )
    )


def simulate(
    workload: Union[RunSpec, str, WorkloadProfile],
    predictor: Optional[Union[str, MDPredictor]] = None,
    config: Optional[CoreConfig] = None,
    num_ops: Optional[int] = None,
    branch_predictor: Optional[BranchPredictor] = None,
    warmup_ops: Optional[int] = None,
    check_invariants: Optional[bool] = None,
    probes: Optional[Iterable[Probe]] = None,
    interval_ops: Optional[int] = None,
    seed: Optional[int] = None,
) -> SimResult:
    """Run one (workload, predictor, core) simulation and return its result.

    The canonical form takes a single :class:`~repro.sim.spec.RunSpec`::

        simulate(RunSpec("511.povray", "phast", num_ops=50_000))

    The legacy kwargs form (``simulate("511.povray", "phast", ...)``) is a
    deprecated shim that packs its arguments into a ``RunSpec`` — it
    produces bit-identical results, but it emits a ``DeprecationWarning``
    naming the exact replacement call; build the spec directly.

    ``warmup_ops`` micro-ops execute (training predictors and warming caches)
    but are excluded from every statistic — the steady-state methodology.

    ``check_invariants`` enables the simulator's self-checks
    (:mod:`repro.sim.invariants`); None defers to REPRO_CHECK_INVARIANTS.

    ``probes`` attaches additional observers to the pipeline's probe bus.
    ``interval_ops`` additionally attaches an
    :class:`~repro.sim.intervals.IntervalMetricsProbe` and surfaces its
    windows on ``SimResult.intervals``.
    """
    if isinstance(workload, RunSpec):
        if predictor is not None:
            raise TypeError(
                "simulate(spec) takes no further arguments; use "
                "spec.with_overrides(...) to vary a RunSpec"
            )
        return run_spec(workload)
    if predictor is None:
        raise TypeError("simulate() missing required argument: 'predictor'")
    workload_repr = workload if isinstance(workload, str) else workload.name
    predictor_repr = predictor if isinstance(predictor, str) else "<predictor>"
    warnings.warn(
        "simulate(workload, predictor, ...) kwargs are deprecated; call "
        f"simulate(RunSpec({workload_repr!r}, {predictor_repr!r}, ...)) "
        "instead (from repro.api import RunSpec)",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_spec(
        RunSpec(
            workload=workload,
            predictor=predictor,
            config=config,
            num_ops=num_ops,
            warmup_ops=warmup_ops,
            seed=seed,
            check_invariants=check_invariants,
            probes=tuple(probes or ()),
            interval_ops=interval_ops,
            branch_predictor=branch_predictor,
        )
    )
