"""One-call simulation entry point.

``simulate("511.povray", "phast")`` builds the workload trace (cached), the
Alder Lake-like core, the TAGE front end and the named predictor, runs the
pipeline and returns a :class:`~repro.sim.metrics.SimResult`.

Trace length defaults to :func:`default_num_ops` and can be raised globally
with the ``REPRO_TRACE_OPS`` environment variable for higher-fidelity runs
(the paper simulates 100M-instruction intervals; these profiles are
stationary, so tens of thousands of micro-ops reach steady state). The
environment is read at *call* time, so overrides set after import — by
harness worker subprocesses, or tests via ``monkeypatch.setenv`` — take
effect; the legacy ``DEFAULT_NUM_OPS``/``DEFAULT_WARMUP_OPS`` module
attributes resolve dynamically via PEP 562 for the same reason (but a
``from ... import DEFAULT_NUM_OPS`` still freezes the value at the import
site — prefer the functions).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Iterable, Optional, Tuple, Union

from repro.core.config import CoreConfig
from repro.core.pipeline import Pipeline
from repro.core.probes import Probe
from repro.frontend.branch_predictors import BranchPredictor
from repro.frontend.tage import TAGEPredictor
from repro.isa.trace import Trace
from repro.mdp.base import MDPredictor
from repro.mdp.cht import CHTPredictor
from repro.mdp.ideal import AlwaysSpeculatePredictor, AlwaysWaitPredictor, IdealPredictor
from repro.mdp.mdp_tage import MDPTagePredictor
from repro.mdp.nosq import NoSQPredictor
from repro.mdp.omnipredictor import OmniPredictor
from repro.mdp.perceptron import PerceptronMDPredictor
from repro.mdp.phast import PHASTPredictor
from repro.mdp.store_sets import StoreSetsPredictor
from repro.mdp.store_vector import StoreVectorPredictor
from repro.mdp.unlimited import (
    UnlimitedMDPTagePredictor,
    UnlimitedNoSQPredictor,
    UnlimitedPHASTPredictor,
)
from repro.sim.intervals import IntervalMetricsProbe
from repro.sim.metrics import SimResult
from repro.workloads.generator import WorkloadProfile, build_trace
from repro.workloads.spec2017 import workload

_FALLBACK_NUM_OPS = 30000
_FALLBACK_WARMUP_OPS = 0


def default_num_ops() -> int:
    """Default dynamic trace length (REPRO_TRACE_OPS, read at call time)."""
    return int(os.environ.get("REPRO_TRACE_OPS", str(_FALLBACK_NUM_OPS)))


def default_warmup_ops() -> int:
    """Default warm-up exclusion (REPRO_WARMUP_OPS, read at call time)."""
    return int(os.environ.get("REPRO_WARMUP_OPS", str(_FALLBACK_WARMUP_OPS)))


def __getattr__(name: str) -> int:
    # PEP 562: the legacy module-level constants, resolved per access so the
    # environment is never frozen at import time.
    if name == "DEFAULT_NUM_OPS":
        return default_num_ops()
    if name == "DEFAULT_WARMUP_OPS":
        return default_warmup_ops()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: Named predictor factories (fresh instance per call).
PREDICTOR_FACTORIES: Dict[str, Callable[[], MDPredictor]] = {
    "ideal": IdealPredictor,
    "always-speculate": AlwaysSpeculatePredictor,
    "always-wait": AlwaysWaitPredictor,
    "store-sets": StoreSetsPredictor,
    "store-vector": StoreVectorPredictor,
    "cht": CHTPredictor,
    "nosq": NoSQPredictor,
    "mdp-tage": MDPTagePredictor,
    "mdp-tage-s": MDPTagePredictor.tage_s,
    "phast": PHASTPredictor,
    "perceptron-mdp": PerceptronMDPredictor,
    "omnipredictor": OmniPredictor,
    "unlimited-phast": UnlimitedPHASTPredictor,
    "unlimited-nosq": UnlimitedNoSQPredictor,
    "unlimited-mdp-tage": UnlimitedMDPTagePredictor,
}

_TRACE_CACHE: Dict[Tuple[str, int, int], Trace] = {}


def make_predictor(name: str) -> MDPredictor:
    """Instantiate a predictor by registry name."""
    try:
        factory = PREDICTOR_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown predictor {name!r}; available: {', '.join(sorted(PREDICTOR_FACTORIES))}"
        ) from None
    return factory()


def get_trace(profile: Union[str, WorkloadProfile], num_ops: int) -> Trace:
    """Build (or fetch from cache) the deterministic trace for a profile."""
    if isinstance(profile, str):
        profile = workload(profile)
    # The seed participates in the key: a --seed-overridden profile shares
    # its name with the default profile but is a different trace.
    key = (profile.name, profile.seed, num_ops)
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = build_trace(profile, num_ops)
    return _TRACE_CACHE[key]


def clear_trace_cache() -> None:
    _TRACE_CACHE.clear()


def simulate(
    profile: Union[str, WorkloadProfile],
    predictor: Union[str, MDPredictor],
    config: Optional[CoreConfig] = None,
    num_ops: Optional[int] = None,
    branch_predictor: Optional[BranchPredictor] = None,
    warmup_ops: Optional[int] = None,
    check_invariants: Optional[bool] = None,
    probes: Optional[Iterable[Probe]] = None,
    interval_ops: Optional[int] = None,
) -> SimResult:
    """Run one (workload, predictor, core) simulation and return its result.

    ``warmup_ops`` micro-ops execute (training predictors and warming caches)
    but are excluded from every statistic — the steady-state methodology.

    ``check_invariants`` enables the simulator's self-checks
    (:mod:`repro.sim.invariants`); None defers to REPRO_CHECK_INVARIANTS.

    ``probes`` attaches additional observers to the pipeline's probe bus.
    ``interval_ops`` additionally attaches an
    :class:`~repro.sim.intervals.IntervalMetricsProbe` and surfaces its
    windows on ``SimResult.intervals``.
    """
    core_config = config or CoreConfig()
    if isinstance(predictor, str):
        predictor = make_predictor(predictor)
    trace = get_trace(profile, num_ops or default_num_ops())
    interval_probe: Optional[IntervalMetricsProbe] = None
    all_probes = list(probes or ())
    if interval_ops is not None:
        interval_probe = IntervalMetricsProbe(interval_ops)
        all_probes.append(interval_probe)
    pipeline = Pipeline(
        config=core_config,
        predictor=predictor,
        branch_predictor=branch_predictor or TAGEPredictor(),
        check_invariants=check_invariants,
        probes=all_probes,
    )
    stats = pipeline.run(
        trace,
        warmup_ops=default_warmup_ops() if warmup_ops is None else warmup_ops,
    )
    paths = getattr(predictor, "paths_tracked", None)
    return SimResult(
        workload=trace.name,
        predictor=predictor.name,
        core=core_config.name,
        pipeline=stats,
        mdp=predictor.stats,
        paths_tracked=paths,
        intervals=tuple(interval_probe.windows) if interval_probe else None,
    )
