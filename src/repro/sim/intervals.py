"""Windowed (per-interval) pipeline metrics over the probe bus.

End-of-run aggregates hide phase behaviour: a predictor that is perfect for
90% of a trace and pathological for 10% can post the same violation MPKI as
one that is uniformly mediocre. :class:`IntervalMetricsProbe` subscribes to
the probe bus and cuts the measured region into windows of ``interval_ops``
committed micro-ops, each an :class:`IntervalWindow` with its own IPC,
violation MPKI, branch MPKI and mean ROB occupancy.

The windows surface in three places:

* ``simulate(RunSpec(..., interval_ops=N))`` returns them on
  ``SimResult.intervals``
  (and they survive the JSON record round trip);
* the ``repro probe`` CLI subcommand renders them as a table;
* the harness executor attaches a probe with an ``on_window`` callback and
  forwards each completed window over the worker pipe as a heartbeat, so a
  hung or killed sweep cell's failure manifest records the last interval it
  completed.

Occupancy is estimated with Little's law: the mean number of in-flight ops
equals the sum of per-op residencies (commit − dispatch) divided by the
window's cycles — no per-cycle sampling needed.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Callable, Dict, List, Mapping, Optional, Type

from repro.common.env import env_int
from repro.core.probes import (
    BranchResolved,
    IntervalBoundary,
    OpCommitted,
    Probe,
    ProbeEvent,
    RunFinished,
    Violation,
)

#: Environment knob for the executor's heartbeat window (committed ops).
HEARTBEAT_ENV = "REPRO_HEARTBEAT_OPS"
DEFAULT_INTERVAL_OPS = 2000


def heartbeat_interval_ops() -> int:
    """Heartbeat window size (committed ops), resolved at call time.

    ``REPRO_HEARTBEAT_OPS=0`` disables worker heartbeats. A malformed value
    is a hard error (it used to fall back silently, which hid typos).
    """
    return env_int(HEARTBEAT_ENV, DEFAULT_INTERVAL_OPS, min_value=0)


@dataclass
class IntervalWindow:
    """Metrics for one window of committed (measured) micro-ops."""

    index: int
    start_op: int
    end_op: int  # inclusive trace index of the window's last op
    cycles: int
    committed_uops: int
    violations: int = 0
    branch_mispredicts: int = 0
    rob_residency: int = 0  # sum over ops of (commit - dispatch) cycles
    partial: bool = False  # trace ended before the window filled

    @property
    def ipc(self) -> float:
        return self.committed_uops / self.cycles if self.cycles else 0.0

    @property
    def violation_mpki(self) -> float:
        if not self.committed_uops:
            return 0.0
        return self.violations * 1000.0 / self.committed_uops

    @property
    def branch_mpki(self) -> float:
        if not self.committed_uops:
            return 0.0
        return self.branch_mispredicts * 1000.0 / self.committed_uops

    @property
    def occupancy(self) -> float:
        """Mean in-flight micro-ops over the window (Little's law)."""
        return self.rob_residency / self.cycles if self.cycles else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe payload (raw fields plus derived metrics)."""
        payload = asdict(self)
        payload["ipc"] = self.ipc
        payload["violation_mpki"] = self.violation_mpki
        payload["branch_mpki"] = self.branch_mpki
        payload["occupancy"] = self.occupancy
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "IntervalWindow":
        """Inverse of :meth:`to_dict`; derived metrics are recomputed."""
        known = {field.name for field in fields(cls)}
        return cls(**{key: value for key, value in payload.items() if key in known})


class IntervalMetricsProbe(Probe):
    """Cuts the measured region into :class:`IntervalWindow` records.

    ``interval_ops`` committed micro-ops per window; a final partial window
    (if the trace ends mid-window) is flushed with ``partial=True``.
    ``on_window``, when given, is called with each completed window — the
    harness executor uses this to stream heartbeats; batch consumers read
    :attr:`windows` after the run.
    """

    def __init__(
        self,
        interval_ops: int = DEFAULT_INTERVAL_OPS,
        on_window: Optional[Callable[[IntervalWindow], None]] = None,
    ) -> None:
        if interval_ops <= 0:
            raise ValueError(f"interval_ops must be positive, got {interval_ops}")
        self.interval_ops = interval_ops  # Probe contract: requests boundaries
        self.on_window = on_window
        self.windows: List[IntervalWindow] = []
        self._committed = 0
        self._violations = 0
        self._mispredicts = 0
        self._residency = 0
        self._last_op = -1

    def subscriptions(self) -> Mapping[Type[ProbeEvent], Callable]:
        return {
            OpCommitted: self._on_op_committed,
            Violation: self._on_violation,
            BranchResolved: self._on_branch_resolved,
            IntervalBoundary: self._on_boundary,
            RunFinished: self._on_run_finished,
        }

    # ------------------------------------------------------------ handlers --

    def _on_op_committed(self, event: OpCommitted) -> None:
        if event.measuring:
            self._committed += 1
            self._residency += event.commit_cycle - event.dispatch_cycle
            self._last_op = event.index

    def _on_violation(self, event: Violation) -> None:
        if event.measuring and not event.phantom:
            self._violations += 1

    def _on_branch_resolved(self, event: BranchResolved) -> None:
        if event.measuring and event.mispredicted:
            self._mispredicts += 1

    def _on_boundary(self, event: IntervalBoundary) -> None:
        self._cut(
            index=event.interval_index,
            start_op=event.start_op,
            end_op=event.end_op,
            cycles=event.end_cycle - event.start_cycle,
            partial=False,
        )

    def _on_run_finished(self, event: RunFinished) -> None:
        if self._committed == 0:
            return
        previous_end = self.windows[-1].end_op if self.windows else None
        start_op = (previous_end + 1) if previous_end is not None else event.warmup_ops
        start_cycle = (
            # Cycles since the last boundary: total measured cycles minus
            # cycles already attributed to completed windows.
            event.warmup_end_cycle
            + sum(window.cycles for window in self.windows)
        )
        self._cut(
            index=len(self.windows),
            start_op=start_op,
            end_op=self._last_op,
            cycles=event.last_commit_cycle - start_cycle,
            partial=True,
        )

    # --------------------------------------------------- checkpoint protocol --

    def checkpoint_state(self) -> Dict[str, object]:
        """Snapshot the probe's accumulators (checkpointed-sampling protocol).

        A probe exposing ``checkpoint_state``/``restore_checkpoint_state``
        survives a mid-run machine-state snapshot: ``repro.sampling``
        captures this payload with the rest of the machine and re-seeds a
        same-class probe on restore, so a resumed run's interval windows are
        bit-identical to an uninterrupted run's. ``on_window`` callbacks are
        deliberately not captured — they are process-local wiring.
        """
        return {
            "windows": [window.to_dict() for window in self.windows],
            "committed": self._committed,
            "violations": self._violations,
            "mispredicts": self._mispredicts,
            "residency": self._residency,
            "last_op": self._last_op,
        }

    def restore_checkpoint_state(self, state: Mapping[str, object]) -> None:
        """Inverse of :meth:`checkpoint_state`."""
        self.windows = [
            IntervalWindow.from_dict(window) for window in state["windows"]
        ]
        self._committed = state["committed"]
        self._violations = state["violations"]
        self._mispredicts = state["mispredicts"]
        self._residency = state["residency"]
        self._last_op = state["last_op"]

    # ------------------------------------------------------------- helpers --

    def _cut(
        self, index: int, start_op: int, end_op: int, cycles: int, partial: bool
    ) -> None:
        window = IntervalWindow(
            index=index,
            start_op=start_op,
            end_op=end_op,
            cycles=max(1, cycles),
            committed_uops=self._committed,
            violations=self._violations,
            branch_mispredicts=self._mispredicts,
            rob_residency=self._residency,
            partial=partial,
        )
        self._committed = 0
        self._violations = 0
        self._mispredicts = 0
        self._residency = 0
        self.windows.append(window)
        if self.on_window is not None:
            self.on_window(window)
