"""Simulation orchestration: one-call runs, metrics, and experiment grids."""

from repro.sim.metrics import SimResult
from repro.sim.simulator import (
    DEFAULT_NUM_OPS,
    PREDICTOR_FACTORIES,
    make_predictor,
    simulate,
)
from repro.sim.experiment import ExperimentGrid, normalize_to_ideal

__all__ = [
    "SimResult",
    "simulate",
    "make_predictor",
    "PREDICTOR_FACTORIES",
    "DEFAULT_NUM_OPS",
    "ExperimentGrid",
    "normalize_to_ideal",
]
