"""Simulation orchestration: one-call runs, metrics, and experiment grids."""

from repro.sim.experiment import ExperimentGrid, normalize_to_ideal
from repro.sim.intervals import IntervalMetricsProbe, IntervalWindow
from repro.sim.metrics import SimResult
from repro.sim.simulator import (
    PREDICTOR_FACTORIES,
    available_predictors,
    clear_trace_cache,
    default_num_ops,
    default_warmup_ops,
    get_trace,
    make_predictor,
    register_predictor,
    run_spec,
    simulate,
    trace_cache_info,
    unregister_predictor,
)
from repro.sim.spec import RunSpec

__all__ = [
    "SimResult",
    "RunSpec",
    "simulate",
    "run_spec",
    "make_predictor",
    "register_predictor",
    "unregister_predictor",
    "available_predictors",
    "PREDICTOR_FACTORIES",
    "DEFAULT_NUM_OPS",
    "default_num_ops",
    "default_warmup_ops",
    "get_trace",
    "clear_trace_cache",
    "trace_cache_info",
    "IntervalWindow",
    "IntervalMetricsProbe",
    "ExperimentGrid",
    "normalize_to_ideal",
]


def __getattr__(name: str) -> int:
    # PEP 562 passthrough: keep the legacy constant importable from here
    # while resolving the environment at access time (see repro.sim.simulator).
    if name in ("DEFAULT_NUM_OPS", "DEFAULT_WARMUP_OPS"):
        from repro.sim import simulator

        return getattr(simulator, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
