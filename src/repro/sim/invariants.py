"""Simulator self-checks: fail loudly instead of producing wrong IPC.

A timing-model bug rarely crashes — it silently produces plausible-looking
but wrong numbers, which is the worst failure mode a reproduction can have.
With invariant checking enabled (``REPRO_CHECK_INVARIANTS=1``, the CLI's
``--check-invariants``, or ``Pipeline(..., check_invariants=True)``) the
pipeline validates, as it schedules each micro-op:

* **window bounds** — an op never dispatches before the op ROB-size slots
  earlier has committed (and likewise for the IQ/LQ/SQ rings), i.e. modelled
  occupancy can never exceed the configured capacity;
* **commit ordering** — commit cycles are non-decreasing in program order
  (in-order retirement) and no op commits before it completes;
* **store record sanity** — a store's address resolves no later than it
  executes, and it drains to the cache only after executing;
* **forwarding consistency** — every :class:`LoadResolution` is internally
  consistent: a forwarder is resolved, overlapping and covering; data is
  never ready before the load executes; violation stores are visible,
  unresolved and (with the FWD filter) younger than the forwarder.

A failed check raises :class:`SimInvariantError`, a *structured* error the
fault-tolerant harness records verbatim in its failure manifest (kind
``invariant``, never retried — the failure is deterministic).

This module is dependency-free (duck-typed over store records and
resolutions) so :mod:`repro.core.pipeline` and :mod:`repro.core.lsq` can
use it without an import cycle.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Mapping, Optional, Sequence, Type

from repro.core.probes import (
    OpCommitted,
    OpDispatched,
    Probe,
    ProbeEvent,
    RunFinished,
    StoreRecorded,
)
from repro.isa.microop import OpKind

#: Environment knob: any value other than ""/"0"/"false"/"no" enables
#: invariant checking in every pipeline built afterwards.
ENV_FLAG = "REPRO_CHECK_INVARIANTS"


def invariants_enabled() -> bool:
    """Whether the environment requests invariant checking."""
    value = os.environ.get(ENV_FLAG, "")
    return value.strip().lower() not in ("", "0", "false", "no")


class SimInvariantError(RuntimeError):
    """A simulator self-check failed; the run's statistics are untrustworthy.

    ``check`` is a stable machine-readable identifier (e.g.
    ``"rob-overflow"``, ``"forwarder-unresolved"``); ``context`` carries the
    offending cycle numbers / sequence numbers for the failure manifest.
    """

    def __init__(
        self,
        check: str,
        message: str,
        context: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(f"[{check}] {message}")
        self.check = check
        self.message = message
        self.context = dict(context or {})

    def to_dict(self) -> Dict[str, object]:
        return {
            "check": self.check,
            "message": self.message,
            "context": self.context,
        }


def _fail(check: str, message: str, **context: object) -> None:
    raise SimInvariantError(check, message, context)


class InvariantChecker:
    """Per-run validator driven by the pipeline's scheduling events.

    The pipeline calls the ``observe_*`` hooks as it processes each micro-op;
    each hook re-verifies a property the scheduling code is supposed to
    guarantee by construction, so any future regression (or memory
    corruption in a long campaign) trips a check instead of skewing IPC.
    """

    def __init__(
        self,
        rob_entries: int,
        iq_entries: int,
        lq_entries: int,
        sq_entries: int,
    ) -> None:
        self.rob_entries = rob_entries
        self.iq_entries = iq_entries
        self.lq_entries = lq_entries
        self.sq_entries = sq_entries
        self._last_commit_cycle = 0
        self._last_commit_seq = -1
        self.checks_run = 0

    # ------------------------------------------------------------ windows --

    def observe_dispatch(
        self,
        seq: int,
        dispatch_cycle: int,
        rob_free_cycle: int,
        iq_free_cycle: int,
    ) -> None:
        """An op dispatched; its ROB/IQ slots must already be free."""
        self.checks_run += 1
        if dispatch_cycle < rob_free_cycle:
            _fail(
                "rob-overflow",
                f"op {seq} dispatched at cycle {dispatch_cycle} before the op "
                f"{self.rob_entries} slots earlier committed (cycle {rob_free_cycle})",
                seq=seq,
                dispatch_cycle=dispatch_cycle,
                rob_free_cycle=rob_free_cycle,
                rob_entries=self.rob_entries,
            )
        if dispatch_cycle < iq_free_cycle:
            _fail(
                "iq-overflow",
                f"op {seq} dispatched at cycle {dispatch_cycle} before the op "
                f"{self.iq_entries} slots earlier issued (cycle {iq_free_cycle})",
                seq=seq,
                dispatch_cycle=dispatch_cycle,
                iq_free_cycle=iq_free_cycle,
                iq_entries=self.iq_entries,
            )

    def observe_load_slot(
        self, seq: int, dispatch_cycle: int, lq_free_cycle: int
    ) -> None:
        self.checks_run += 1
        if dispatch_cycle < lq_free_cycle:
            _fail(
                "lq-overflow",
                f"load {seq} dispatched at cycle {dispatch_cycle} before the load "
                f"{self.lq_entries} slots earlier committed (cycle {lq_free_cycle})",
                seq=seq,
                dispatch_cycle=dispatch_cycle,
                lq_free_cycle=lq_free_cycle,
                lq_entries=self.lq_entries,
            )

    def observe_store_slot(
        self, seq: int, dispatch_cycle: int, sq_free_cycle: int
    ) -> None:
        self.checks_run += 1
        if dispatch_cycle < sq_free_cycle:
            _fail(
                "sq-overflow",
                f"store {seq} dispatched at cycle {dispatch_cycle} before the store "
                f"{self.sq_entries} slots earlier drained (cycle {sq_free_cycle})",
                seq=seq,
                dispatch_cycle=dispatch_cycle,
                sq_free_cycle=sq_free_cycle,
                sq_entries=self.sq_entries,
            )

    # ------------------------------------------------------------- commit --

    def observe_commit(self, seq: int, commit_cycle: int, complete_cycle: int) -> None:
        """An op retired; retirement is in program order, after completion."""
        self.checks_run += 1
        if commit_cycle < self._last_commit_cycle:
            _fail(
                "commit-order",
                f"op {seq} commits at cycle {commit_cycle}, before op "
                f"{self._last_commit_seq} (cycle {self._last_commit_cycle}): "
                "retirement must be non-decreasing in program order",
                seq=seq,
                commit_cycle=commit_cycle,
                prev_seq=self._last_commit_seq,
                prev_commit_cycle=self._last_commit_cycle,
            )
        if commit_cycle <= complete_cycle:
            _fail(
                "commit-before-complete",
                f"op {seq} commits at cycle {commit_cycle} but completes at "
                f"cycle {complete_cycle}",
                seq=seq,
                commit_cycle=commit_cycle,
                complete_cycle=complete_cycle,
            )
        self._last_commit_cycle = commit_cycle
        self._last_commit_seq = seq

    # -------------------------------------------------------------- store --

    def observe_store_record(self, record: object) -> None:
        """A store entered the window: its lifecycle cycles must be ordered."""
        self.checks_run += 1
        addr_ready = record.addr_ready
        exec_cycle = record.exec_cycle
        drain_cycle = record.drain_cycle
        if exec_cycle < addr_ready:
            _fail(
                "store-exec-before-agu",
                f"store {record.seq} executes at cycle {exec_cycle} before its "
                f"address resolves at cycle {addr_ready}",
                seq=record.seq,
                addr_ready=addr_ready,
                exec_cycle=exec_cycle,
            )
        if drain_cycle <= exec_cycle:
            _fail(
                "store-drain-before-exec",
                f"store {record.seq} drains at cycle {drain_cycle}, not after "
                f"executing at cycle {exec_cycle}",
                seq=record.seq,
                exec_cycle=exec_cycle,
                drain_cycle=drain_cycle,
            )
        if record.size <= 0:
            _fail(
                "store-empty",
                f"store {record.seq} writes {record.size} bytes",
                seq=record.seq,
                size=record.size,
            )

    # ---------------------------------------------------------- resolution --

    def check_load_resolution(
        self,
        resolution: object,
        stores: Sequence[object],
        address: int,
        size: int,
        exec_cycle: int,
        forwarding_filter: bool,
    ) -> None:
        """Validate one LSQ disambiguation outcome against its inputs.

        ``resolution`` duck-types :class:`repro.core.lsq.LoadResolution`;
        ``stores`` are the candidate records handed to ``resolve_load``.
        """
        self.checks_run += 1
        kind = getattr(resolution.kind, "value", resolution.kind)
        forwarder = resolution.forwarder
        data_ready = resolution.data_ready

        if kind == "forward":
            if forwarder is None:
                _fail("forward-without-store", "FORWARD resolution has no forwarder")
            if forwarder.addr_ready > exec_cycle:
                _fail(
                    "forwarder-unresolved",
                    f"load at cycle {exec_cycle} forwards from store "
                    f"{forwarder.seq} whose address resolves at cycle "
                    f"{forwarder.addr_ready}",
                    exec_cycle=exec_cycle,
                    store_seq=forwarder.seq,
                    addr_ready=forwarder.addr_ready,
                )
            if not forwarder.covers(address, size):
                _fail(
                    "forwarder-partial",
                    f"store {forwarder.seq} forwards to a load it does not "
                    f"cover ([{address:#x}, {address + size:#x}))",
                    store_seq=forwarder.seq,
                    address=address,
                    size=size,
                )
            if forwarder.drain_cycle <= exec_cycle:
                _fail(
                    "forwarder-drained",
                    f"store {forwarder.seq} forwards after draining "
                    f"(drain {forwarder.drain_cycle} <= exec {exec_cycle})",
                    store_seq=forwarder.seq,
                    drain_cycle=forwarder.drain_cycle,
                    exec_cycle=exec_cycle,
                )
        elif kind == "cache":
            if forwarder is not None or data_ready is not None:
                _fail(
                    "cache-with-forwarder",
                    "CACHE resolution carries forwarding state",
                    exec_cycle=exec_cycle,
                )

        if data_ready is not None and data_ready < exec_cycle:
            _fail(
                "data-before-exec",
                f"load data ready at cycle {data_ready}, before the load "
                f"executes at cycle {exec_cycle}",
                data_ready=data_ready,
                exec_cycle=exec_cycle,
            )

        violators = [
            ("violation_store_commit", resolution.violation_store_commit),
            ("violation_store_detect", resolution.violation_store_detect),
        ]
        if resolution.violated:
            for label, store in violators:
                if store is None:
                    _fail(
                        "violation-without-store",
                        f"violated resolution has no {label}",
                        exec_cycle=exec_cycle,
                    )
                if not store.overlaps(address, size):
                    _fail(
                        "violation-disjoint",
                        f"{label} {store.seq} does not overlap the load's bytes",
                        store_seq=store.seq,
                        address=address,
                        size=size,
                    )
                if store.addr_ready <= exec_cycle:
                    _fail(
                        "violation-resolved-store",
                        f"{label} {store.seq} resolved at cycle "
                        f"{store.addr_ready}, before the load executed at "
                        f"cycle {exec_cycle} — a resolved store cannot cause "
                        "a violation",
                        store_seq=store.seq,
                        addr_ready=store.addr_ready,
                        exec_cycle=exec_cycle,
                    )
                if (
                    forwarding_filter
                    and forwarder is not None
                    and store.seq <= forwarder.seq
                ):
                    _fail(
                        "fwd-filter-leak",
                        f"{label} {store.seq} is not younger than forwarder "
                        f"{forwarder.seq}: the FWD filter should have "
                        "suppressed this violation (Fig. 3c)",
                        store_seq=store.seq,
                        forwarder_seq=forwarder.seq,
                    )
        else:
            for label, store in violators:
                if store is not None:
                    _fail(
                        "phantom-violation-store",
                        f"non-violated resolution carries {label} {store.seq}",
                        store_seq=store.seq,
                    )

    # ------------------------------------------------------------ wrap-up --

    def finalize(self, stats: object, expected_committed: int) -> None:
        """End-of-run aggregate consistency checks."""
        self.checks_run += 1
        if stats.committed_uops != expected_committed:
            _fail(
                "commit-count",
                f"committed {stats.committed_uops} micro-ops, expected "
                f"{expected_committed}",
                committed=stats.committed_uops,
                expected=expected_committed,
            )
        if stats.cycles <= 0:
            _fail("no-cycles", f"run finished with {stats.cycles} cycles")
        mix = stats.loads + stats.stores + stats.branches
        if mix > stats.committed_uops:
            _fail(
                "class-count",
                f"loads+stores+branches ({mix}) exceed committed micro-ops "
                f"({stats.committed_uops})",
                loads=stats.loads,
                stores=stats.stores,
                branches=stats.branches,
                committed=stats.committed_uops,
            )


class InvariantProbe(Probe):
    """Bus adapter: drives an :class:`InvariantChecker` from probe events.

    The pipeline attaches one when invariant checking is enabled; the
    checker's per-event hooks fire at the same sequence points as the old
    inline calls (dispatch, store-record insertion, retirement, end of run).
    The LSQ-level ``check_load_resolution`` hook is *not* bus-driven — it
    runs inside :func:`repro.core.lsq.resolve_load`, which receives the
    checker directly.

    ``stats`` is the run's :class:`~repro.core.pipeline.PipelineStats`; the
    stats probe must be attached *before* this probe so the end-of-run
    aggregate checks see the final cycle count.
    """

    __slots__ = ("checker", "stats")

    def __init__(self, checker: InvariantChecker, stats: object) -> None:
        self.checker = checker
        self.stats = stats

    def subscriptions(self) -> Mapping[Type[ProbeEvent], Callable]:
        return {
            OpDispatched: self._on_dispatched,
            StoreRecorded: self._on_store_recorded,
            OpCommitted: self._on_committed,
            RunFinished: self._on_run_finished,
        }

    def _on_dispatched(self, event: OpDispatched) -> None:
        checker = self.checker
        checker.observe_dispatch(
            event.index,
            event.dispatch_cycle,
            event.rob_free_cycle,
            event.iq_free_cycle,
        )
        if event.kind is OpKind.LOAD:
            checker.observe_load_slot(
                event.index, event.dispatch_cycle, event.slot_free_cycle
            )
        elif event.kind is OpKind.STORE:
            checker.observe_store_slot(
                event.index, event.dispatch_cycle, event.slot_free_cycle
            )

    def _on_store_recorded(self, event: StoreRecorded) -> None:
        self.checker.observe_store_record(event.record)

    def _on_committed(self, event: OpCommitted) -> None:
        self.checker.observe_commit(event.index, event.commit_cycle,
                                    event.complete_cycle)

    def _on_run_finished(self, event: RunFinished) -> None:
        self.checker.finalize(self.stats, event.measured_ops)
