"""The batch backend's shared trace preparation and fused per-cell engine.

The batch backend exploits one structural fact about the timing model: with
the default front end (a fresh TAGE per run, ``wrong_path_depth == 0``), the
branch predictor and the global branch history observe *only the committed
branch stream in program order* — a pure function of the trace, independent
of every per-cell scheduling decision. So for a group of cells sharing one
trace, :class:`TracePrep` runs that front end **once**: it decodes the trace
into NumPy structured arrays, derives the per-op fields the scheduling loop
needs (history snapshots, fetch-line changes, store numbers) with vectorized
passes, and replays the branch stream through one shared TAGE + history log,
capturing the per-branch mispredict flags every cell will see.

:func:`run_fused_cell` then simulates one cell against the shared decode
with a fused program-order loop: the same scheduling math as
:mod:`repro.core.stages` — width cursors, occupancy rings, port pools, the
store window, load disambiguation, violation squash + replay — inlined into
one function, with statistics accumulated in local integers instead of probe
events and the predictor driven through its standard hook surface
(``on_load_dispatch`` / ``on_store_dispatch`` / ``on_violation`` /
``on_load_commit``). Bit-identity with the reference interpreter is the
contract (enforced per predictor by ``tests/core/test_hot_path_identity.py``);
every scheduling expression below is a transcription of the corresponding
stage code, and comments call out the few deliberate event-object shortcuts
(all observationally equivalent because the reference bus has no default
subscribers for those events).

Per-cell state stays per-cell: cycle cursors, caches (MSHR cycle stamps),
the register scoreboard, the store window, predictor tables and statistics
are all rebuilt per cell. Only the trace decode, the history log and the
front-end outcome flags are shared — and those are read-only after prep.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.config import CoreConfig
from repro.core.context import _PortPool, _StoreWindow
from repro.core.lsq import ForwardKind, StoreRecord, multi_store_suppliers, resolve_load
from repro.core.pipeline import PipelineStats
from repro.frontend.history import GlobalHistory
from repro.frontend.tage import TAGEPredictor
from repro.isa.microop import OpKind
from repro.isa.trace import Trace
from repro.mdp.base import (
    LoadCommitInfo,
    LoadDispatchInfo,
    MDPredictor,
    StoreDispatchInfo,
    ViolationInfo,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.backends._numpy import require_numpy
from repro.sim.intervals import IntervalWindow

#: Plan record codes (first tuple element of every per-op plan entry).
LOAD, STORE, BRANCH, OTHER = 0, 1, 2, 3

#: Structured-array kind codes, in OpKind declaration order.
KIND_CODES = {kind: code for code, kind in enumerate(OpKind)}


class TracePrep:
    """Shared, read-only per-trace preparation for a batch of cells.

    ``ops`` is the canonical decode: one NumPy structured array holding the
    scalar fields of every micro-op plus the derived per-op values
    (``snapshot``, ``fetch_changed``, ``store_number``, ``mispredicted``).
    Variable-length register tuples cannot live in a structured array and
    stay in parallel Python lists. ``plan`` is the hot-loop form: one small
    tuple per op, shaped per kind, with every value a plain Python scalar
    (NumPy scalars are poison in a scalar scheduling loop).
    """

    __slots__ = (
        "trace",
        "ops",
        "history",
        "plan",
        "branch_count",
        "_kernel_cache",
    )

    def __init__(self, trace: Trace) -> None:
        np = require_numpy()
        self.trace = trace
        self._kernel_cache: dict = {}
        n = len(trace)

        kinds = [0] * n
        pcs = [0] * n
        addrs = [-1] * n
        sizes = [0] * n
        dsts = [-1] * n
        srcs: List[tuple] = [()] * n
        sdata: List[tuple] = [()] * n
        branches = []  # (index, BranchInfo)
        kind_codes = KIND_CODES
        for index, op in enumerate(trace):
            kinds[index] = kind_codes[op.kind]
            pcs[index] = op.pc
            if op.mem is not None:
                addrs[index] = op.mem.address
                sizes[index] = op.mem.size
            if op.dst_reg is not None:
                dsts[index] = op.dst_reg
            srcs[index] = op.src_regs
            if op.branch is not None:
                branches.append((index, op.branch))
            elif op.store_data_regs:
                sdata[index] = op.store_data_regs

        kind_arr = np.asarray(kinds, dtype=np.int8)
        pc_arr = np.asarray(pcs, dtype=np.int64)
        is_branch = kind_arr == kind_codes[OpKind.BRANCH]
        is_store = kind_arr == kind_codes[OpKind.STORE]
        # History snapshot before op i == branches committed before i (the
        # master log appends exactly one record per branch, any kind).
        snapshot_arr = np.cumsum(is_branch) - is_branch
        # Store number of op i (stores only) == stores committed before i.
        store_number_arr = np.cumsum(is_store) - is_store
        # Dispatch fetches a new line whenever the 64-byte line changes
        # between consecutive ops (``last_fetch_line`` always holds the
        # previous op's line); the first op always fetches (line init -1).
        lines = pc_arr >> 6
        fetch_arr = np.empty(n, dtype=bool)
        fetch_arr[0] = True
        np.not_equal(lines[1:], lines[:-1], out=fetch_arr[1:])

        # ---- the shared front-end pass: one TAGE + history per trace -----
        # Every cell of a covered group uses the default front end, which
        # sees the same committed branch stream; flags are cell-invariant.
        mispredict_arr = np.zeros(n, dtype=bool)
        history = GlobalHistory()
        observe = TAGEPredictor().observe
        record = history.record
        for index, info in branches:
            mispredict_arr[index] = observe(pcs[index], info.kind, info.taken,
                                            info.target)
            record(pcs[index], info)
        self.history = history
        self.branch_count = len(branches)

        self.ops = np.zeros(
            n,
            dtype=[
                ("pc", np.int64),
                ("kind", np.int8),
                ("addr", np.int64),
                ("size", np.int16),
                ("dst", np.int32),
                ("snapshot", np.int64),
                ("store_number", np.int64),
                ("fetch_changed", np.bool_),
                ("mispredicted", np.bool_),
            ],
        )
        self.ops["pc"] = pc_arr
        self.ops["kind"] = kind_arr
        self.ops["addr"] = np.asarray(addrs, dtype=np.int64)
        self.ops["size"] = np.asarray(sizes, dtype=np.int16)
        self.ops["dst"] = np.asarray(dsts, dtype=np.int32)
        self.ops["snapshot"] = snapshot_arr
        self.ops["store_number"] = store_number_arr
        self.ops["fetch_changed"] = fetch_arr
        self.ops["mispredicted"] = mispredict_arr

        # ---- hot-loop plan: plain-scalar tuples, shaped per kind ---------
        snapshots = snapshot_arr.tolist()
        fetches = fetch_arr.tolist()
        mispredicts = mispredict_arr.tolist()
        load_code = kind_codes[OpKind.LOAD]
        store_code = kind_codes[OpKind.STORE]
        branch_code = kind_codes[OpKind.BRANCH]
        plan: List[tuple] = [()] * n
        for index in range(n):
            code = kinds[index]
            pc = pcs[index]
            fetch = fetches[index]
            snapshot = snapshots[index]
            if code == load_code:
                dst = dsts[index]
                plan[index] = (
                    LOAD, pc, fetch, snapshot, addrs[index], sizes[index],
                    dst if dst >= 0 else None, srcs[index],
                )
            elif code == store_code:
                plan[index] = (
                    STORE, pc, fetch, snapshot, addrs[index], sizes[index],
                    srcs[index], sdata[index],
                )
            elif code == branch_code:
                plan[index] = (
                    BRANCH, pc, fetch, snapshot, mispredicts[index], srcs[index],
                )
            else:
                dst = dsts[index]
                plan[index] = (
                    OTHER, pc, fetch, snapshot, trace[index].kind,
                    dst if dst >= 0 else None, srcs[index],
                )
        self.plan = plan

    def __len__(self) -> int:
        return len(self.plan)

    def kernel_plan(self, key: str, build: Callable[["TracePrep"], object]):
        """Memoized per-trace kernel precomputation (see :mod:`repro.mdp.kernels`)."""
        value = self._kernel_cache.get(key)
        if value is None:
            value = build(self)
            self._kernel_cache[key] = value
        return value


#: ``MDPredictor`` base hooks, for the "predictor doesn't override it" fast
#: paths: constructing a ``LoadCommitInfo`` for a no-op hook is pure waste.
_BASE_ON_LOAD_COMMIT = MDPredictor.on_load_commit
_BASE_ON_STORE_DISPATCH = MDPredictor.on_store_dispatch


def run_fused_cell(
    prep: TracePrep,
    config: CoreConfig,
    predictor: MDPredictor,
    warmup_ops: int,
    interval_cadence: int = 0,
    on_window: Optional[Callable[[IntervalWindow], None]] = None,
) -> Tuple[PipelineStats, List[IntervalWindow]]:
    """Simulate one cell against the shared decode; returns (stats, windows).

    ``interval_cadence`` > 0 activates the interval accumulator (the fused
    equivalent of :class:`~repro.sim.intervals.IntervalMetricsProbe` driven
    by the commit stage's boundary logic); ``on_window`` fires per completed
    window, for heartbeat streaming. Windows are returned either way.
    """
    plan = prep.plan
    total = len(plan)
    if warmup_ops < 0 or warmup_ops >= total:
        raise ValueError(f"warmup_ops must be in [0, {total}), got {warmup_ops}")

    # ---- per-cell structural state (mirrors SimContext.__init__) ---------
    rob = config.rob_entries
    iq = config.iq_entries
    lq = config.lq_entries
    sq = config.sq_entries
    d2i = config.dispatch_to_issue_latency
    l1d_latency = config.hierarchy.l1d.hit_latency
    fwd_filter = config.forwarding_filter
    dispatch_width = config.dispatch_width
    commit_width = config.commit_width
    drain_width = config.store_drain_per_cycle
    eager_squash = config.violation_squash == "eager"
    violation_penalty = config.violation_penalty
    redirect_penalty = config.branch_redirect_penalty
    branch_latency = config.latencies[OpKind.BRANCH]

    hierarchy = MemoryHierarchy(config.hierarchy)
    fetch_access = hierarchy.fetch_access
    load_access = hierarchy.load_access

    commit_ring = [0] * rob
    issue_ring = [0] * iq
    load_ring = [0] * lq
    store_ring = [0] * sq
    reg_ready = [0] * config.num_arch_regs
    window = _StoreWindow(capacity=sq + 32)
    window_append = window.append
    window_by_number = window.by_number
    window_by_seq = window.by_seq
    window_candidates = window.candidates
    window_all = window.all_records

    ports = {kind: _PortPool(count) for kind, count in config.ports.items()}
    allocate_load_port = ports[OpKind.LOAD].allocate
    allocate_store_port = ports[OpKind.STORE].allocate
    allocate_branch_port = ports[OpKind.BRANCH].allocate
    exec_by_kind = {}
    for kind, latency in config.latencies.items():
        pool = ports.get(kind)
        if pool is None:
            continue
        busy = latency if kind is OpKind.DIV else 1  # DIV unpipelined
        exec_by_kind[kind] = (pool.allocate, latency, busy)

    # Width cursors, inlined as scalars (the _WidthCursor allocate dance).
    disp_cycle = 0
    disp_count = 0
    com_cycle = 0
    com_count = 0
    drain_cycle_cur = 0
    drain_count = 0

    load_count = 0
    store_count = 0
    frontend_ready = 0
    last_commit = 0
    warmup_end_cycle = 0

    history = prep.history
    predict_load = predictor.on_load_dispatch
    trains_at_commit = predictor.trains_at_commit
    on_violation = predictor.on_violation
    skip_commit_info = type(predictor).on_load_commit is _BASE_ON_LOAD_COMMIT
    on_load_commit = predictor.on_load_commit
    skip_store_predict = (
        type(predictor).on_store_dispatch is _BASE_ON_STORE_DISPATCH
    )
    predict_store = predictor.on_store_dispatch
    load_info = LoadDispatchInfo(
        pc=0, seq=0, hist_snapshot=0, store_count=0, history=history
    )
    store_info = StoreDispatchInfo(
        pc=0, seq=0, hist_snapshot=0, store_number=0, history=history
    )

    # ---- inline statistics accumulators (StatsProbe equivalents) ---------
    committed_uops = 0
    loads = stores = branches = 0
    branch_mispredicts = 0
    violations = false_positives = correct_waits = 0
    dependences_predicted = 0
    forwarded_loads = partial_loads = cache_loads = 0
    multi_store_loads = multi_store_inorder = 0
    reexecuted_uops = 0

    # ---- interval accumulator (IntervalMetricsProbe equivalents) ---------
    windows: List[IntervalWindow] = []
    iv_committed = 0
    iv_violations = 0
    iv_mispredicts = 0
    iv_residency = 0
    iv_last_op = -1
    interval_index = 0
    interval_op_count = 0
    interval_start_cycle = 0
    interval_start_op = warmup_ops

    for index in range(total):
        rec = plan[index]
        code = rec[0]
        pc = rec[1]
        measuring = index >= warmup_ops

        # ---- dispatch (DispatchStage.process) ----------------------------
        earliest = frontend_ready
        rob_free = commit_ring[index % rob]
        if rob_free > earliest:
            earliest = rob_free
        iq_free = issue_ring[index % iq]
        if iq_free > earliest:
            earliest = iq_free
        if rec[2]:  # fetch line changed
            fetched = fetch_access(pc, earliest)
            if fetched > earliest:
                earliest = fetched
        if code == LOAD:
            slot_free = load_ring[load_count % lq]
            if slot_free > earliest:
                earliest = slot_free
        elif code == STORE:
            slot_free = store_ring[store_count % sq]
            if slot_free > earliest:
                earliest = slot_free
        if earliest > disp_cycle:
            disp_cycle = earliest
            disp_count = 1
            dispatch_cycle = earliest
        elif disp_count < dispatch_width:
            disp_count += 1
            dispatch_cycle = disp_cycle
        else:
            disp_cycle += 1
            disp_count = 1
            dispatch_cycle = disp_cycle
        snapshot = rec[3]

        if code == LOAD:
            operands = 0
            for reg in rec[7]:
                ready = reg_ready[reg]
                if ready > operands:
                    operands = ready
            ready_to_issue = dispatch_cycle + d2i
            if operands > ready_to_issue:
                ready_to_issue = operands

            # ---- load (MemoryStage.process) ------------------------------
            address = rec[4]
            size = rec[5]
            candidates = window_candidates(address, size)

            oracle_store = None
            oracle_multi = False
            if candidates:
                naive_exec = ready_to_issue + 1
                visible = [s for s in candidates if s.drain_cycle > naive_exec]
                if visible:
                    oracle_store = visible[-1]
                    if len(visible) > 1:
                        suppliers = multi_store_suppliers(visible, address, size)
                        oracle_multi = len(suppliers) >= 2
                        if oracle_multi and measuring:
                            multi_store_loads += 1
                            execs = [s.exec_cycle for s in suppliers]
                            if execs == sorted(execs):
                                multi_store_inorder += 1

            info = load_info
            info.pc = pc
            info.seq = index
            info.hist_snapshot = snapshot
            info.store_count = store_count
            info.oracle_store_number = (
                oracle_store.store_number if oracle_store is not None else None
            )
            info.oracle_multi_store = oracle_multi

            was_violated = False
            attempt_dispatch = dispatch_cycle
            attempt_ready = ready_to_issue
            while True:
                prediction = predict_load(info)
                wait_targets = []
                issue_ready = attempt_ready
                if prediction.is_dependence:
                    if prediction.wait_all_older:
                        for record in window_all():
                            ready = record.addr_ready - 1
                            if ready > issue_ready:
                                issue_ready = ready
                            wait_targets.append(record)
                    for distance in prediction.distances:
                        target = window_by_number(store_count - 1 - distance)
                        if target is not None:
                            ready = target.addr_ready - 1
                            if ready > issue_ready:
                                issue_ready = ready
                            wait_targets.append(target)
                    for seq in prediction.store_seqs:
                        record = window_by_seq(seq)
                        if record is not None:
                            ready = record.addr_ready - 1
                            if ready > issue_ready:
                                issue_ready = ready
                            wait_targets.append(record)
                    if measuring:
                        dependences_predicted += 1

                issue = allocate_load_port(issue_ready)
                exec_cycle = issue + 1  # AGU
                if candidates:
                    resolution = resolve_load(
                        candidates, address, size, exec_cycle, l1d_latency,
                        fwd_filter,
                    )
                    res_kind = resolution.kind
                    if res_kind is ForwardKind.CACHE:
                        complete = load_access(pc, address, exec_cycle)
                        if measuring:
                            cache_loads += 1
                    else:
                        complete = resolution.data_ready
                        if measuring:
                            if res_kind is ForwardKind.FORWARD:
                                forwarded_loads += 1
                            else:
                                partial_loads += 1
                else:
                    # No overlapping store in the window: resolve_load is
                    # guaranteed to return CACHE with no violation, so skip
                    # the resolution object entirely.
                    resolution = None
                    complete = load_access(pc, address, exec_cycle)
                    if measuring:
                        cache_loads += 1

                # allocate_commit(max(complete + 1, 0)); cycles are >= 0.
                earliest_commit = complete + 1
                if earliest_commit > com_cycle:
                    com_cycle = earliest_commit
                    com_count = 1
                    commit_cycle = earliest_commit
                elif com_count < commit_width:
                    com_count += 1
                    commit_cycle = com_cycle
                else:
                    com_cycle += 1
                    com_count = 1
                    commit_cycle = com_cycle

                if resolution is None or not resolution.violated:
                    break

                was_violated = True
                training_store = (
                    resolution.violation_store_commit
                    if trains_at_commit
                    else resolution.violation_store_detect
                )
                on_violation(
                    ViolationInfo(
                        load_pc=pc,
                        load_seq=index,
                        load_snapshot=snapshot,
                        load_store_count=store_count,
                        store_pc=training_store.pc,
                        store_seq=training_store.seq,
                        store_snapshot=training_store.hist_snapshot,
                        store_number=training_store.store_number,
                        history=history,
                    )
                )
                if measuring:
                    violations += 1
                    iv_violations += 1

                # ---- squash + replay (SquashUnit.squash) -----------------
                if eager_squash:
                    detection = exec_cycle
                    if training_store.addr_ready > detection:
                        detection = training_store.addr_ready
                    squash_cycle = detection + violation_penalty
                else:
                    squash_cycle = commit_cycle + violation_penalty
                if squash_cycle > disp_cycle:
                    disp_cycle = squash_cycle
                    disp_count = 1
                    replay_dispatch = squash_cycle
                elif disp_count < dispatch_width:
                    disp_count += 1
                    replay_dispatch = disp_cycle
                else:
                    disp_cycle += 1
                    disp_count = 1
                    replay_dispatch = disp_cycle
                if measuring:
                    wasted = squash_cycle - attempt_dispatch
                    if wasted > 0:
                        cost = dispatch_width * wasted
                        reexecuted_uops += cost if cost < rob else rob
                attempt_dispatch = replay_dispatch
                attempt_ready = replay_dispatch + d2i
                if ready_to_issue > attempt_ready:
                    attempt_ready = ready_to_issue

            # ---- commit-time feedback --------------------------------
            true_store = resolution.true_store if resolution is not None else None
            actual = true_store if true_store is not None else oracle_store
            is_dependence = prediction.is_dependence
            delayed = issue_ready > attempt_ready if is_dependence else False
            waited_correct = (
                is_dependence
                and actual is not None
                and any(target.seq == actual.seq for target in wait_targets)
            )
            false_positive = is_dependence and delayed and not waited_correct
            if measuring:
                if waited_correct:
                    correct_waits += 1
                if false_positive:
                    false_positives += 1
            if not skip_commit_info:
                on_load_commit(
                    LoadCommitInfo(
                        pc=pc,
                        seq=index,
                        hist_snapshot=snapshot,
                        store_count=store_count,
                        prediction=prediction,
                        predicted_store_number=(
                            wait_targets[0].store_number if wait_targets else None
                        ),
                        actual_store_number=(
                            actual.store_number if actual else None
                        ),
                        waited_correct=waited_correct,
                        false_positive=false_positive,
                        violated=was_violated,
                        history=history,
                    )
                )

            load_ring[load_count % lq] = commit_cycle
            load_count += 1
            dst = rec[6]
            if dst is not None:
                reg_ready[dst] = complete
            if measuring:
                loads += 1

        elif code == STORE:
            operands = 0
            for reg in rec[6]:
                ready = reg_ready[reg]
                if ready > operands:
                    operands = ready
            ready_to_issue = dispatch_cycle + d2i
            if operands > ready_to_issue:
                ready_to_issue = operands

            # ---- store (StoreStage.process) ------------------------------
            data_operands = 0
            for reg in rec[7]:
                ready = reg_ready[reg]
                if ready > data_operands:
                    data_operands = ready
            agu_ready = ready_to_issue
            if skip_store_predict:
                # Base-class on_store_dispatch returns NO_DEPENDENCE without
                # reading the info record: skip both record fill and call.
                pass
            else:
                sinfo = store_info
                sinfo.pc = pc
                sinfo.seq = index
                sinfo.hist_snapshot = snapshot
                sinfo.store_number = store_count
                store_pred = predict_store(sinfo)
                if store_pred.is_dependence:
                    for dep_seq in store_pred.store_seqs:
                        record = window_by_seq(dep_seq)
                        if record is not None:
                            ready = record.exec_cycle + 1
                            if ready > agu_ready:
                                agu_ready = ready
            exec_floor = dispatch_cycle + d2i
            if data_operands > exec_floor:
                exec_floor = data_operands
            issue = allocate_store_port(agu_ready)
            addr_ready = issue + 1
            complete = addr_ready if addr_ready > exec_floor else exec_floor

            earliest_commit = complete + 1
            if last_commit > earliest_commit:
                earliest_commit = last_commit
            if earliest_commit > com_cycle:
                com_cycle = earliest_commit
                com_count = 1
                commit_cycle = earliest_commit
            elif com_count < commit_width:
                com_count += 1
                commit_cycle = com_cycle
            else:
                com_cycle += 1
                com_count = 1
                commit_cycle = com_cycle

            earliest_drain = commit_cycle + 1
            if earliest_drain > drain_cycle_cur:
                drain_cycle_cur = earliest_drain
                drain_count = 1
                drain_cycle = earliest_drain
            elif drain_count < drain_width:
                drain_count += 1
                drain_cycle = drain_cycle_cur
            else:
                drain_cycle_cur += 1
                drain_count = 1
                drain_cycle = drain_cycle_cur

            window_append(
                StoreRecord(
                    seq=index,
                    pc=pc,
                    address=rec[4],
                    size=rec[5],
                    store_number=store_count,
                    addr_ready=addr_ready,
                    exec_cycle=complete,
                    drain_cycle=drain_cycle,
                    hist_snapshot=snapshot,
                )
            )
            store_ring[store_count % sq] = drain_cycle
            store_count += 1
            if measuring:
                stores += 1

        elif code == BRANCH:
            operands = 0
            for reg in rec[5]:
                ready = reg_ready[reg]
                if ready > operands:
                    operands = ready
            ready_to_issue = dispatch_cycle + d2i
            if operands > ready_to_issue:
                ready_to_issue = operands

            # ---- branch (BranchStage.process) ----------------------------
            # The prediction outcome comes from the shared front-end pass;
            # history recording happened there too.
            issue = allocate_branch_port(ready_to_issue)
            complete = issue + branch_latency
            if rec[4]:  # mispredicted
                if measuring:
                    branch_mispredicts += 1
                    iv_mispredicts += 1
                redirect = complete + redirect_penalty
                if redirect > frontend_ready:
                    frontend_ready = redirect

            earliest_commit = complete + 1
            if last_commit > earliest_commit:
                earliest_commit = last_commit
            if earliest_commit > com_cycle:
                com_cycle = earliest_commit
                com_count = 1
                commit_cycle = earliest_commit
            elif com_count < commit_width:
                com_count += 1
                commit_cycle = com_cycle
            else:
                com_cycle += 1
                com_count = 1
                commit_cycle = com_cycle
            if measuring:
                branches += 1

        else:
            operands = 0
            for reg in rec[6]:
                ready = reg_ready[reg]
                if ready > operands:
                    operands = ready
            ready_to_issue = dispatch_cycle + d2i
            if operands > ready_to_issue:
                ready_to_issue = operands

            # ---- ALU / MUL / DIV / FP / NOP (ExecuteStage.process) -------
            allocate_port, latency, busy = exec_by_kind[rec[4]]
            issue = allocate_port(ready_to_issue, busy)
            complete = issue + latency
            dst = rec[5]
            if dst is not None:
                reg_ready[dst] = complete

            earliest_commit = complete + 1
            if last_commit > earliest_commit:
                earliest_commit = last_commit
            if earliest_commit > com_cycle:
                com_cycle = earliest_commit
                com_count = 1
                commit_cycle = earliest_commit
            elif com_count < commit_width:
                com_count += 1
                commit_cycle = com_cycle
            else:
                com_cycle += 1
                com_count = 1
                commit_cycle = com_cycle

        # ---- retire (CommitStage.retire) ---------------------------------
        commit_ring[index % rob] = commit_cycle
        issue_ring[index % iq] = issue
        if commit_cycle > last_commit:
            last_commit = commit_cycle
        if measuring:
            committed_uops += 1
            if interval_cadence:
                iv_committed += 1
                iv_residency += commit_cycle - dispatch_cycle
                iv_last_op = index
                interval_op_count += 1
                if interval_op_count >= interval_cadence:
                    end_cycle = last_commit
                    cycles = end_cycle - interval_start_cycle
                    win = IntervalWindow(
                        index=interval_index,
                        start_op=interval_start_op,
                        end_op=index,
                        cycles=cycles if cycles > 1 else 1,
                        committed_uops=iv_committed,
                        violations=iv_violations,
                        branch_mispredicts=iv_mispredicts,
                        rob_residency=iv_residency,
                        partial=False,
                    )
                    windows.append(win)
                    if on_window is not None:
                        on_window(win)
                    iv_committed = iv_violations = iv_mispredicts = 0
                    iv_residency = 0
                    interval_index += 1
                    interval_op_count = 0
                    interval_start_cycle = end_cycle
                    interval_start_op = index + 1
        elif index == warmup_ops - 1:
            warmup_end_cycle = last_commit
            interval_start_cycle = last_commit

    # ---- finish (RunFinished handlers) -----------------------------------
    if interval_cadence and iv_committed:
        # The trailing partial window, exactly as IntervalMetricsProbe cuts
        # it: the start cycle is recomputed from the (clamped) window sum.
        start_op = windows[-1].end_op + 1 if windows else warmup_ops
        start_cycle = warmup_end_cycle + sum(w.cycles for w in windows)
        cycles = last_commit - start_cycle
        win = IntervalWindow(
            index=len(windows),
            start_op=start_op,
            end_op=iv_last_op,
            cycles=cycles if cycles > 1 else 1,
            committed_uops=iv_committed,
            violations=iv_violations,
            branch_mispredicts=iv_mispredicts,
            rob_residency=iv_residency,
            partial=True,
        )
        windows.append(win)
        if on_window is not None:
            on_window(win)

    stats = PipelineStats(
        committed_uops=committed_uops,
        cycles=max(1, last_commit - warmup_end_cycle),
        loads=loads,
        stores=stores,
        branches=branches,
        branch_mispredicts=branch_mispredicts,
        violations=violations,
        false_positives=false_positives,
        correct_waits=correct_waits,
        dependences_predicted=dependences_predicted,
        forwarded_loads=forwarded_loads,
        partial_loads=partial_loads,
        cache_loads=cache_loads,
        multi_store_loads=multi_store_loads,
        multi_store_inorder=multi_store_inorder,
        reexecuted_uops=reexecuted_uops,
        wrong_path_loads=0,
        wrong_path_trainings=0,
    )
    return stats, windows
