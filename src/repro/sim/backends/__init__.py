"""Execution-backend registry: named strategies for running simulations.

``simulate()``/``run_spec()`` dispatch through this registry; the active
backend comes from ``RunSpec.backend``, else the ``REPRO_SIM_BACKEND``
environment knob (validated, read at call time), else ``"reference"``.

Built-ins:

* ``reference`` — the per-op interpreted pipeline; always available.
* ``batch`` — shared-decode vectorized batch execution (needs numpy);
  registered lazily so importing this package never pulls the array stack.

Third backends register with :func:`register_backend`; see
``docs/backends.md`` for the contract (bit-identity with ``reference`` on
covered specs, graceful per-cell fallback elsewhere).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.common.env import env_choice
from repro.sim.backends.base import (  # noqa: F401  (public re-exports)
    Backend,
    BackendError,
)
from repro.sim.backends.reference import ReferenceBackend

#: Environment knob naming the default backend (validated at call time).
ENV_BACKEND = "REPRO_SIM_BACKEND"

_FACTORIES: Dict[str, Callable[[], Backend]] = {}
#: One long-lived instance per name: backends are stateless between runs
#: (per-run state lives in the engine/pipeline objects they build).
_INSTANCES: Dict[str, Backend] = {}


def register_backend(
    name: str, factory: Callable[[], Backend], replace: bool = False
) -> None:
    """Register a named backend factory.

    Registered names work everywhere a built-in does: ``RunSpec.backend``,
    ``REPRO_SIM_BACKEND``, ``repro sweep --backend``, ``repro backends ls``.
    Raises ``ValueError`` on duplicates unless ``replace=True``.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty string, got {name!r}")
    if not callable(factory):
        raise TypeError(f"factory for backend {name!r} is not callable: {factory!r}")
    if name in _FACTORIES and not replace:
        raise ValueError(
            f"backend {name!r} is already registered; pass replace=True to "
            "override it"
        )
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def unregister_backend(name: str) -> None:
    """Remove a registered backend (KeyError if absent)."""
    del _FACTORIES[name]
    _INSTANCES.pop(name, None)


def available_backends() -> Tuple[str, ...]:
    """Sorted names of every registered backend.

    Availability here means *registered*; a backend whose dependencies are
    missing (batch without numpy) still lists, and raises its clear error
    on first use — silent disappearance would make ``--backend batch``
    quietly mean something else.
    """
    return tuple(sorted(_FACTORIES))


def validate_backend_name(name: str) -> str:
    """Return ``name`` if registered, else raise a ``ValueError`` naming it."""
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        )
    return name


def default_backend_name() -> str:
    """The ``REPRO_SIM_BACKEND`` knob, validated, read at call time."""
    return env_choice(ENV_BACKEND, "reference", available_backends())


def get_backend(name: str) -> Backend:
    """The (cached) backend instance for a registered name."""
    validate_backend_name(name)
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = _FACTORIES[name]()
        _INSTANCES[name] = instance
    return instance


def _make_batch() -> Backend:
    # Imported on first use: keeps `import repro.sim` numpy-free and makes
    # a missing numpy a clear BackendError at run time, not an ImportError
    # at import time.
    from repro.sim.backends.batch import BatchBackend

    return BatchBackend()


register_backend("reference", ReferenceBackend)
register_backend("batch", _make_batch)
