"""The execution-backend contract.

A *backend* is a strategy for turning :class:`~repro.sim.spec.RunSpec`s
into :class:`~repro.sim.metrics.SimResult`s. The contract is semantic
bit-identity: for any spec a backend claims to cover, its result — every
``PipelineStats`` counter, every ``MDPStats`` counter, every interval
window — must equal the ``reference`` backend's to the bit (the golden
fixture in ``tests/core/test_hot_path_identity.py`` enforces this for every
registered predictor). Backends differ only in *how fast* they get there:

* ``reference`` — the per-op interpreted pipeline (:mod:`repro.core`), one
  cell at a time. Always available, covers every spec; the semantic truth.
* ``batch`` — decodes a trace once into NumPy structured arrays, runs one
  shared front-end pass, then simulates many cells against the shared
  decode through a fused scheduling loop (:mod:`repro.sim.backends.batch`).
  Falls back to ``reference`` per cell for specs it cannot cover.

``docs/backends.md`` documents the contract and how to register a third
backend.
"""

from __future__ import annotations

import abc
from typing import Callable, List, Optional, Sequence

from repro.sim.metrics import SimResult
from repro.sim.spec import RunSpec


class BackendError(RuntimeError):
    """A backend cannot run (missing dependency, bad configuration)."""


#: Callback signatures for batch execution: ``on_result(index, result)``
#: fires the moment a cell completes (the harness streams these over the
#: worker pipe), ``on_heartbeat(index, window_dict)`` forwards progress
#: windows for in-flight cells.
OnResult = Callable[[int, SimResult], None]
OnHeartbeat = Callable[[int, dict], None]


class Backend(abc.ABC):
    """One execution strategy for simulation runs."""

    #: Registry name (``repro backends ls``, ``RunSpec.backend``).
    name: str = "abstract"

    @abc.abstractmethod
    def run(self, spec: RunSpec) -> SimResult:
        """Execute one spec and return its result."""

    def covers(self, spec: RunSpec) -> bool:
        """Can this backend execute ``spec`` natively (no fallback)?

        The default claims everything; backends with partial coverage (like
        ``batch``) override this, and ``run`` must still *accept* uncovered
        specs by delegating to the reference backend — coverage gaps slow a
        sweep down, they never block it.
        """
        return True

    def run_many(
        self,
        specs: Sequence[RunSpec],
        on_result: Optional[OnResult] = None,
        on_heartbeat: Optional[OnHeartbeat] = None,
        heartbeat_ops: Optional[int] = None,
    ) -> List[SimResult]:
        """Execute many specs; returns results in spec order.

        The default is a sequential loop of :meth:`run`; batch backends
        override it to share per-trace work across the group. ``on_result``
        fires after each cell so a crash mid-group loses only the unfinished
        cells (the harness's per-cell salvage contract).
        """
        results: List[SimResult] = []
        for index, spec in enumerate(specs):
            result = self.run(spec)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results

    def describe(self) -> dict:
        """Human-oriented registry row (``repro backends ls``)."""
        return {"name": self.name, "class": type(self).__name__}
