"""The ``batch`` backend: shared-decode, kernel-accelerated execution.

One trace decode + one front-end pass (:class:`~repro.sim.backends.engine
.TracePrep`) serves every cell of a group; each cell then runs through the
fused scheduling loop (:func:`~repro.sim.backends.engine.run_fused_cell`)
with a kernel-accelerated predictor where one exists
(:mod:`repro.mdp.kernels`). The result is bit-identical to the reference
interpreter on every covered spec — that is the backend contract, enforced
per predictor by the golden fixture in
``tests/core/test_hot_path_identity.py`` — at a ≥3x group speedup on the
15-predictor hot cell (gated by ``benchmarks/perf_smoke.py --check``).

Coverage: the fused engine hard-codes the default front end (fresh TAGE,
``wrong_path_depth == 0``, no wrong-path modeling), drives predictors
through their standard hook surface, and accumulates statistics in local
integers instead of probe events. A spec escapes that envelope — custom
probes, a branch-predictor override, invariant checking, a shadowed
predictor registration, a non-default wrong-path depth, or a missing
NumPy — and :meth:`BatchBackend.run` silently delegates that cell to the
reference backend. Coverage gaps slow a sweep down; they never change
results and never block.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.sim.backends._numpy import have_numpy, numpy_version
from repro.sim.backends.base import Backend, OnHeartbeat, OnResult
from repro.sim.backends.engine import TracePrep, run_fused_cell
from repro.sim.backends.reference import execute_reference
from repro.sim.metrics import SimResult
from repro.sim.spec import RunSpec

#: Traces whose prep survives between calls. Preps are a similar size to
#: the decoded trace (one tuple per op), and the trace layer itself caches
#: aggressively, so keep only the most recent few.
_PREP_CACHE_LIMIT = 4


def _expected_factories():
    """The predictor factories the fused engine was validated against.

    Coverage must reject *shadowed* names: ``register_predictor("phast",
    MyPredictor, replace=True)`` makes ``make_predictor("phast")`` build
    something the engine's fast paths and kernels were never checked
    against, so such cells fall back to the reference interpreter.
    """
    from repro.mdp.cht import CHTPredictor
    from repro.mdp.ideal import (
        AlwaysSpeculatePredictor,
        AlwaysWaitPredictor,
        IdealPredictor,
    )
    from repro.mdp.mdp_tage import MDPTagePredictor
    from repro.mdp.nosq import NoSQPredictor
    from repro.mdp.omnipredictor import OmniPredictor
    from repro.mdp.perceptron import PerceptronMDPredictor
    from repro.mdp.phast import PHASTPredictor
    from repro.mdp.store_sets import StoreSetsPredictor
    from repro.mdp.store_vector import StoreVectorPredictor
    from repro.mdp.unlimited import (
        UnlimitedMDPTagePredictor,
        UnlimitedNoSQPredictor,
        UnlimitedPHASTPredictor,
    )

    return {
        "ideal": IdealPredictor,
        "always-speculate": AlwaysSpeculatePredictor,
        "always-wait": AlwaysWaitPredictor,
        "store-sets": StoreSetsPredictor,
        "store-vector": StoreVectorPredictor,
        "cht": CHTPredictor,
        "nosq": NoSQPredictor,
        "mdp-tage": MDPTagePredictor,
        "mdp-tage-s": MDPTagePredictor.tage_s,
        "phast": PHASTPredictor,
        "perceptron-mdp": PerceptronMDPredictor,
        "omnipredictor": OmniPredictor,
        "unlimited-phast": UnlimitedPHASTPredictor,
        "unlimited-nosq": UnlimitedNoSQPredictor,
        "unlimited-mdp-tage": UnlimitedMDPTagePredictor,
    }


class BatchBackend(Backend):
    """Shared-decode fused execution with per-cell reference fallback."""

    name = "batch"

    def __init__(self) -> None:
        self._expected = _expected_factories()
        # (profile key, num_ops, trace_dir) -> (trace, prep); insertion-
        # ordered for LRU-ish eviction.
        self._preps: dict = {}

    # ------------------------------------------------------------ coverage --

    def covers(self, spec: RunSpec) -> bool:
        """Whether ``spec`` fits the fused engine's validated envelope."""
        if not have_numpy():
            return False
        if not isinstance(spec.predictor, str):
            return False  # instances carry arbitrary state; not re-runnable
        expected = self._expected.get(spec.predictor)
        if expected is None:
            return False
        from repro.sim.simulator import PREDICTOR_FACTORIES

        if PREDICTOR_FACTORIES.get(spec.predictor) != expected:
            return False  # registry shadowed: engine never validated this
        if spec.probes:
            return False  # probe bus events are not replayed in the fused loop
        if spec.branch_predictor is not None:
            return False  # shared front-end pass hard-codes the default TAGE
        if spec.check_invariants:
            return False  # invariant probes need the event stream
        if spec.check_invariants is None:
            from repro.sim.invariants import invariants_enabled

            if invariants_enabled():
                return False
        if spec.resolved_config().wrong_path_depth != 0:
            return False  # wrong-path fetch modeling needs the interpreter
        return True

    # ----------------------------------------------------------- execution --

    def _prep_for(self, spec: RunSpec) -> TracePrep:
        from repro.isa.artifacts import TraceStore
        from repro.sim.simulator import get_trace

        profile = spec.resolved_profile()
        # The trace artifact digest identifies the concrete byte sequence;
        # two specs with the same digest simulate the identical trace.
        key = (spec.trace_key().digest, spec.trace_dir)
        cached = self._preps.get(key)
        if cached is not None:
            return cached[1]
        store = TraceStore(spec.trace_dir) if spec.trace_dir else None
        trace = get_trace(profile, spec.resolved_num_ops(), store=store)
        prep = TracePrep(trace)
        while len(self._preps) >= _PREP_CACHE_LIMIT:
            self._preps.pop(next(iter(self._preps)))
        self._preps[key] = (trace, prep)
        return prep

    def _run_covered(
        self,
        spec: RunSpec,
        prep: TracePrep,
        on_window=None,
        heartbeat_ops: Optional[int] = None,
    ) -> SimResult:
        from repro.mdp.kernels import make_kernel_predictor
        from repro.sim.simulator import make_predictor

        config = spec.resolved_config()
        name = spec.predictor
        predictor = make_kernel_predictor(name, prep) or make_predictor(name)
        # The probe-based reference only ever has one interval cadence; the
        # fused loop reuses its accumulator for heartbeat streaming when the
        # spec itself asked for no interval metrics.
        cadence = spec.interval_ops or (heartbeat_ops or 0)
        stats, windows = run_fused_cell(
            prep,
            config,
            predictor,
            spec.resolved_warmup_ops(),
            interval_cadence=cadence,
            on_window=on_window,
        )
        return SimResult(
            workload=prep.trace.name,
            predictor=predictor.name,
            core=config.name,
            pipeline=stats,
            mdp=predictor.stats,
            paths_tracked=getattr(predictor, "paths_tracked", None),
            intervals=tuple(windows) if spec.interval_ops is not None else None,
        )

    def run(self, spec: RunSpec) -> SimResult:
        if not self.covers(spec):
            return execute_reference(spec)
        return self._run_covered(spec, self._prep_for(spec))

    def run_many(
        self,
        specs: Sequence[RunSpec],
        on_result: Optional[OnResult] = None,
        on_heartbeat: Optional[OnHeartbeat] = None,
        heartbeat_ops: Optional[int] = None,
    ) -> List[SimResult]:
        """Run a group, sharing one :class:`TracePrep` per distinct trace.

        Cells run in spec order (the prep cache makes trace-interleaved
        orders merely suboptimal, not incorrect). ``on_result`` fires per
        completed cell; ``on_heartbeat`` receives interval windows at
        ``spec.interval_ops`` (or ``heartbeat_ops``) cadence — heartbeat-only
        windows are streamed but never attached to the ``SimResult``,
        matching the reference worker's probe wiring.
        """
        results: List[SimResult] = []
        for index, spec in enumerate(specs):
            if self.covers(spec):
                on_window = None
                if on_heartbeat is not None:
                    on_window = lambda window, _i=index: on_heartbeat(
                        _i, window.to_dict()
                    )
                result = self._run_covered(
                    spec,
                    self._prep_for(spec),
                    on_window=on_window,
                    heartbeat_ops=heartbeat_ops,
                )
            else:
                result = execute_reference(spec)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results

    # ----------------------------------------------------------- reporting --

    def describe(self) -> dict:
        from repro.mdp.kernels import KERNEL_NAMES

        row = super().describe()
        row["available"] = have_numpy()
        row["numpy"] = numpy_version() or "missing"
        row["coverage"] = (
            "registered predictors, default front end, no probes/invariants"
        )
        row["kernels"] = ", ".join(KERNEL_NAMES)
        return row
