"""The ``reference`` backend: the per-op interpreted pipeline.

This is the pre-existing execution path — :func:`~repro.sim.simulator
.build_pipeline` plus ``Pipeline.run`` — behind the :class:`Backend`
protocol. It covers every spec, needs no optional dependencies, and defines
the semantics every other backend must reproduce bit-for-bit.
"""

from __future__ import annotations

from repro.sim.backends.base import Backend
from repro.sim.metrics import SimResult
from repro.sim.spec import RunSpec


def execute_reference(spec: RunSpec) -> SimResult:
    """Run one spec on the interpreted pipeline (shared with fallbacks)."""
    # Imported late: repro.sim.simulator imports the backend registry for
    # dispatch, so a top-level import here would cycle.
    from repro.isa.artifacts import TraceStore
    from repro.sim.simulator import build_pipeline, get_trace

    store = TraceStore(spec.trace_dir) if spec.trace_dir else None
    trace = get_trace(spec.resolved_profile(), spec.resolved_num_ops(), store=store)
    pipeline, interval_probe = build_pipeline(spec)
    stats = pipeline.run(trace, warmup_ops=spec.resolved_warmup_ops())
    predictor = pipeline.predictor
    paths = getattr(predictor, "paths_tracked", None)
    return SimResult(
        workload=trace.name,
        predictor=predictor.name,
        core=pipeline.config.name,
        pipeline=stats,
        mdp=predictor.stats,
        paths_tracked=paths,
        intervals=tuple(interval_probe.windows) if interval_probe else None,
    )


class ReferenceBackend(Backend):
    """Per-op interpreter; always available, covers everything."""

    name = "reference"

    def run(self, spec: RunSpec) -> SimResult:
        return execute_reference(spec)

    def describe(self) -> dict:
        row = super().describe()
        row["available"] = True
        row["coverage"] = "all specs (semantic reference)"
        return row
