"""Guarded NumPy import for the batch backend.

``numpy`` is a declared dependency (``pyproject.toml``), but the reference
backend — and therefore every default code path — must stay importable
without it: minimal environments that only ever run the interpreter should
not pay for (or break on) the array stack. Everything batch-related
therefore imports NumPy through :func:`require_numpy`, which converts an
``ImportError`` into a :class:`~repro.sim.backends.base.BackendError`
naming the fix, and :func:`have_numpy` lets the registry report
availability without raising.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.backends.base import BackendError

try:  # pragma: no cover - exercised implicitly by every batch import
    import numpy as _numpy
except ImportError:  # pragma: no cover - numpy is present in CI
    _numpy = None


def have_numpy() -> bool:
    """True when NumPy imported cleanly."""
    return _numpy is not None


def numpy_version() -> Optional[str]:
    return _numpy.__version__ if _numpy is not None else None


def require_numpy():
    """Return the ``numpy`` module or raise a clear :class:`BackendError`."""
    if _numpy is None:
        raise BackendError(
            "the 'batch' backend requires numpy, which failed to import; "
            "install it (pip install numpy) or run with the 'reference' "
            "backend (--backend reference / REPRO_SIM_BACKEND=reference)"
        )
    return _numpy
