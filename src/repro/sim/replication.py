"""Multi-seed replication: statistical confidence for reproduction claims.

The synthetic workloads are deterministic per seed; a single trace is one
sample from the profile's distribution. For claims that ride on small
differences (e.g. "PHAST beats NoSQ by 0.5%"), this module reruns the same
profile under shifted seeds and reports mean, standard deviation and a
normal-approximation confidence interval — so EXPERIMENTS.md can state which
reproduced deltas are statistically solid at the chosen trace length.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence, Union

from repro.core.config import CoreConfig
from repro.harness.store import ResultStore, cell_key
from repro.mdp.base import MDPredictor
from repro.sim.metrics import SimResult
from repro.sim.simulator import default_num_ops, make_predictor, simulate
from repro.sim.spec import RunSpec
from repro.workloads.generator import WorkloadProfile
from repro.workloads.spec2017 import workload

#: z-value for a two-sided 95% normal confidence interval.
Z_95 = 1.96


@dataclass(frozen=True)
class ReplicatedMetric:
    """Mean/std/CI of one metric across seed replicas."""

    name: str
    samples: Sequence[float]

    def __post_init__(self) -> None:
        if not self.samples:
            raise ValueError("a replicated metric needs at least one sample")

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def std(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mean = self.mean
        variance = sum((x - mean) ** 2 for x in self.samples) / (len(self.samples) - 1)
        return math.sqrt(variance)

    @property
    def ci95_half_width(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        return Z_95 * self.std / math.sqrt(len(self.samples))

    def overlaps(self, other: "ReplicatedMetric") -> bool:
        """True when the two 95% intervals overlap (delta not significant)."""
        low_self = self.mean - self.ci95_half_width
        high_self = self.mean + self.ci95_half_width
        low_other = other.mean - other.ci95_half_width
        high_other = other.mean + other.ci95_half_width
        return low_self <= high_other and low_other <= high_self

    def __str__(self) -> str:
        return f"{self.name}: {self.mean:.4f} ± {self.ci95_half_width:.4f} (n={len(self.samples)})"


@dataclass(frozen=True)
class WeightedMetric:
    """Weighted mean + sampling CI over stratified representatives.

    This is the aggregation side of checkpointed sampled simulation
    (:mod:`repro.sampling`): each SimPoint representative contributes one
    measurement ``x_k`` with its cluster weight ``w_k`` (the fraction of
    intervals its cluster covers). The estimate is ``Σ ŵ_k·x_k`` with
    weights normalised to 1.

    The error model treats the representatives as independent draws with a
    common within-population variance, estimated by the reliability-weighted
    sample variance ``s² = Σ ŵ_k (x_k − mean)² / (1 − Σ ŵ_k²)``; the
    variance of the weighted mean is then ``Σ ŵ_k² · s²``. This is
    *conservative* for SimPoint weights — between-cluster spread inflates
    ``s²`` relative to the true within-cluster sampling error — so the
    reported 95% interval is an upper bound on the sampling uncertainty,
    which is the safe direction for an error bar on a reproduction claim.
    """

    name: str
    values: Sequence[float]
    weights: Sequence[float]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("a weighted metric needs at least one value")
        if len(self.values) != len(self.weights):
            raise ValueError(
                f"{len(self.values)} values but {len(self.weights)} weights"
            )
        if any(weight < 0 for weight in self.weights):
            raise ValueError("weights must be non-negative")
        if sum(self.weights) <= 0:
            raise ValueError("weights must not sum to zero")

    @property
    def _normalized(self) -> List[float]:
        total = sum(self.weights)
        return [weight / total for weight in self.weights]

    @property
    def mean(self) -> float:
        return sum(w * x for w, x in zip(self._normalized, self.values))

    @property
    def ci95_half_width(self) -> float:
        if len(self.values) < 2:
            return 0.0
        normalized = self._normalized
        effective = 1.0 - sum(w * w for w in normalized)
        if effective <= 0.0:  # one representative carries all the weight
            return 0.0
        mean = self.mean
        variance = (
            sum(w * (x - mean) ** 2 for w, x in zip(normalized, self.values))
            / effective
        )
        return Z_95 * math.sqrt(sum(w * w for w in normalized) * variance)

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.mean:.4f} ± {self.ci95_half_width:.4f} "
            f"(k={len(self.values)})"
        )


def seed_replicas(
    profile: Union[str, WorkloadProfile], count: int
) -> List[WorkloadProfile]:
    """``count`` independent re-seedings of a profile (same structure)."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if isinstance(profile, str):
        profile = workload(profile)
    return [
        replace(profile, name=f"{profile.name}#r{index}", seed=profile.seed + 7919 * index)
        for index in range(count)
    ]


def _replica_result(
    replica: WorkloadProfile,
    predictor: MDPredictor,
    config: Optional[CoreConfig],
    num_ops: int,
    store: Optional[ResultStore],
) -> SimResult:
    """Simulate one replica, consulting/feeding the durable store if given.

    The store key carries the replica's seed, so re-seeded copies of the
    same profile occupy distinct cells and a replication campaign resumes
    from its completed replicas after a crash.
    """
    spec = RunSpec(
        workload=replica, predictor=predictor, config=config, num_ops=num_ops
    )
    if store is None:
        return simulate(spec)
    key = cell_key(
        replica.name, predictor.name, config or CoreConfig(), num_ops, replica.seed
    )
    cached = store.get(key)
    if cached is not None:
        return cached
    result = simulate(spec)
    store.put(key, result)
    return result


def replicate(
    profile: Union[str, WorkloadProfile],
    predictor_factory: Union[str, Callable[[], MDPredictor]],
    replicas: int = 5,
    num_ops: Optional[int] = None,
    config: Optional[CoreConfig] = None,
    metric: Callable[[SimResult], float] = lambda result: result.ipc,
    metric_name: str = "ipc",
    store: Optional[ResultStore] = None,
) -> ReplicatedMetric:
    """Run ``replicas`` re-seeded copies and aggregate ``metric``."""
    if isinstance(predictor_factory, str):
        name = predictor_factory
        predictor_factory = lambda: make_predictor(name)  # noqa: E731
    samples = []
    for replica in seed_replicas(profile, replicas):
        result = _replica_result(
            replica,
            predictor_factory(),
            config,
            num_ops or default_num_ops(),
            store,
        )
        samples.append(metric(result))
    return ReplicatedMetric(name=metric_name, samples=tuple(samples))


def replicated_speedup(
    profile: Union[str, WorkloadProfile],
    predictor: str,
    baseline: str,
    replicas: int = 5,
    num_ops: Optional[int] = None,
    store: Optional[ResultStore] = None,
) -> ReplicatedMetric:
    """Per-replica paired speedup (%) of ``predictor`` over ``baseline``.

    Pairing per seed removes the between-seed variance, which is what makes
    small mean speedups detectable with few replicas.
    """
    samples = []
    length = num_ops or default_num_ops()
    for replica in seed_replicas(profile, replicas):
        new = _replica_result(replica, make_predictor(predictor), None, length, store)
        base = _replica_result(replica, make_predictor(baseline), None, length, store)
        samples.append((new.ipc / base.ipc - 1.0) * 100.0)
    return ReplicatedMetric(
        name=f"speedup {predictor} vs {baseline} (%)", samples=tuple(samples)
    )
