"""Result records produced by a simulation run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.pipeline import PipelineStats
from repro.mdp.base import MDPStats


@dataclass(frozen=True)
class SimResult:
    """Everything measured from one (workload, predictor, core) run."""

    workload: str
    predictor: str
    core: str
    pipeline: PipelineStats
    mdp: MDPStats
    paths_tracked: Optional[int] = None  # unlimited predictors only

    @property
    def ipc(self) -> float:
        return self.pipeline.ipc

    @property
    def violation_mpki(self) -> float:
        """False negatives: memory-order violations per kilo-instruction."""
        return self.pipeline.violation_mpki

    @property
    def false_positive_mpki(self) -> float:
        """False dependences (unnecessary stalls) per kilo-instruction."""
        return self.pipeline.false_positive_mpki

    @property
    def total_mdp_mpki(self) -> float:
        return self.pipeline.total_mdp_mpki

    @property
    def branch_mpki(self) -> float:
        return self.pipeline.branch_mpki

    def summary(self) -> str:
        """One-line human-readable digest."""
        paths = f" paths={self.paths_tracked}" if self.paths_tracked is not None else ""
        return (
            f"{self.workload:<18} {self.predictor:<16} IPC={self.ipc:5.2f} "
            f"violMPKI={self.violation_mpki:6.3f} fpMPKI={self.false_positive_mpki:6.3f}"
            f"{paths}"
        )
