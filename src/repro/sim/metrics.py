"""Result records produced by a simulation run, and their JSON codec."""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Dict, Optional, Tuple

from repro.core.pipeline import PipelineStats
from repro.mdp.base import MDPStats
from repro.sim.intervals import IntervalWindow


def _stats_from_dict(cls, payload: Dict[str, object]):
    """Rebuild a stats dataclass, tolerating extra keys from newer writers."""
    known = {field.name for field in fields(cls)}
    return cls(**{key: value for key, value in payload.items() if key in known})


@dataclass(frozen=True)
class SamplingSummary:
    """How a sampled estimate was produced, and how tight it is.

    Attached to a :class:`SimResult` by ``repro.sampling.run_sampled``: the
    headline metrics there are *estimates* aggregated from SimPoint
    representative intervals, and this record carries the sampling geometry
    plus 95% sampling-error half-widths so a consumer can tell an exact
    measurement from an estimated one (``SimResult.sampling is None`` vs
    not) and judge whether a delta clears the error bars.
    """

    interval_ops: int  # ops per measured interval
    warmup_ops: int  # detailed-warmup lead replayed before each interval
    total_ops: int  # ops the estimate stands for (the whole trace)
    simulated_ops: int  # ops actually measured in detail
    num_intervals: int  # intervals the trace was cut into
    num_representatives: int  # clusters / measured representatives
    ipc: float  # weighted-mean IPC estimate
    ipc_ci95: float  # 95% sampling CI half-width on the IPC estimate
    violation_mpki: float
    violation_mpki_ci95: float
    checkpoints_warmed: int  # functional-warming passes paid this run
    checkpoints_reused: int  # representatives served from the checkpoint store

    @property
    def detail_fraction(self) -> float:
        """Fraction of the trace simulated in detail (the speedup lever)."""
        return self.simulated_ops / self.total_ops if self.total_ops else 0.0

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SamplingSummary":
        return _stats_from_dict(cls, dict(payload))


@dataclass(frozen=True)
class SimResult:
    """Everything measured from one (workload, predictor, core) run."""

    workload: str
    predictor: str
    core: str
    pipeline: PipelineStats
    mdp: MDPStats
    paths_tracked: Optional[int] = None  # unlimited predictors only
    #: Windowed metrics, present when the run attached an interval probe
    #: (``simulate(RunSpec(..., interval_ops=N))``); None otherwise.
    intervals: Optional[Tuple[IntervalWindow, ...]] = None
    #: Sampling provenance + error bounds when this result is a sampled
    #: estimate (``repro.sampling.run_sampled``); None for exact runs.
    sampling: Optional[SamplingSummary] = None

    @property
    def ipc(self) -> float:
        return self.pipeline.ipc

    @property
    def violation_mpki(self) -> float:
        """False negatives: memory-order violations per kilo-instruction."""
        return self.pipeline.violation_mpki

    @property
    def false_positive_mpki(self) -> float:
        """False dependences (unnecessary stalls) per kilo-instruction."""
        return self.pipeline.false_positive_mpki

    @property
    def total_mdp_mpki(self) -> float:
        return self.pipeline.total_mdp_mpki

    @property
    def branch_mpki(self) -> float:
        return self.pipeline.branch_mpki

    def summary(self) -> str:
        """One-line human-readable digest."""
        paths = f" paths={self.paths_tracked}" if self.paths_tracked is not None else ""
        return (
            f"{self.workload:<18} {self.predictor:<16} IPC={self.ipc:5.2f} "
            f"violMPKI={self.violation_mpki:6.3f} fpMPKI={self.false_positive_mpki:6.3f}"
            f"{paths}"
        )

    def to_record(self) -> Dict[str, object]:
        """Flatten into a JSON-safe dict (the durable-store/export format)."""
        record = {
            "workload": self.workload,
            "predictor": self.predictor,
            "core": self.core,
            "ipc": self.ipc,
            "violation_mpki": self.violation_mpki,
            "false_positive_mpki": self.false_positive_mpki,
            "branch_mpki": self.branch_mpki,
            "paths_tracked": self.paths_tracked,
            "pipeline": asdict(self.pipeline),
            "mdp": asdict(self.mdp),
        }
        if self.intervals is not None:
            record["intervals"] = [window.to_dict() for window in self.intervals]
        if self.sampling is not None:
            record["sampling"] = self.sampling.to_dict()
        return record

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "SimResult":
        """Inverse of :meth:`to_record` (derived metrics are recomputed)."""
        intervals = record.get("intervals")
        sampling = record.get("sampling")
        return cls(
            workload=str(record["workload"]),
            predictor=str(record["predictor"]),
            core=str(record["core"]),
            pipeline=_stats_from_dict(PipelineStats, dict(record["pipeline"])),
            mdp=_stats_from_dict(MDPStats, dict(record["mdp"])),
            paths_tracked=record.get("paths_tracked"),
            intervals=(
                tuple(IntervalWindow.from_dict(window) for window in intervals)
                if intervals is not None
                else None
            ),
            sampling=(
                SamplingSummary.from_dict(sampling) if sampling is not None else None
            ),
        )
