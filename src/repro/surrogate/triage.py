"""Uncertainty-gated surrogate triage for sweep planning.

The tier sits in front of the executor: every pending cell is scored by
the trained surrogate, and a cell whose confidence interval is tight
enough is *settled* — recorded as a :class:`SurrogateEstimate` outcome and
never simulated. Uncertain cells (and every cell outside the model's
training support) flow to the detailed simulator unchanged, so the
detailed results of a triaged sweep are bit-identical to a full run's.

Settled estimates live in their own store namespace, ``<root>/surrogate/``
— never in ``<root>/results/`` — so nothing downstream can mistake a
prediction for a simulation. Entries carry the usual schema + CRC guard
and read as misses on any corruption.

Modes (``--surrogate`` / ``REPRO_SURROGATE``):

* ``off``    — tier disabled; sweeps behave exactly as before.
* ``triage`` — settle only tight-CI, in-support cells; simulate the rest.
* ``only``   — settle everything, simulate nothing (estimates are still
  tagged; useful for instant what-if grids where error bars are accepted).

All threshold knobs are validated through :mod:`repro.common.env`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.common.atomicio import atomic_write_json
from repro.common.env import env_choice, env_float, env_int
from repro.harness import store as store_mod

#: Mode knob (CLI --surrogate overrides).
ENV_MODE = "REPRO_SURROGATE"
#: Path to a trained model artifact (CLI --surrogate-model overrides).
ENV_MODEL = "REPRO_SURROGATE_MODEL"
#: Settle thresholds: maximum CI halfwidth for each target.
ENV_MAX_CI_IPC = "REPRO_SURROGATE_MAX_CI_IPC"
ENV_MAX_CI_MPKI = "REPRO_SURROGATE_MAX_CI_MPKI"
#: Training knobs (repro surrogate train defaults).
ENV_MEMBERS = "REPRO_SURROGATE_MEMBERS"
ENV_LEVEL = "REPRO_SURROGATE_LEVEL"
ENV_RIDGE = "REPRO_SURROGATE_RIDGE"
ENV_SEED = "REPRO_SURROGATE_SEED"

MODES = ("off", "triage", "only")

#: Schema of one surrogate-store entry; mismatches read as misses.
SURROGATE_SCHEMA = 1


def default_mode() -> str:
    return env_choice(ENV_MODE, "off", MODES)


def default_model_path() -> Optional[str]:
    import os

    return os.environ.get(ENV_MODEL) or None


def default_max_ci_ipc() -> float:
    return env_float(ENV_MAX_CI_IPC, 0.1, min_value=0.0)


def default_max_ci_mpki() -> float:
    return env_float(ENV_MAX_CI_MPKI, 1.0, min_value=0.0)


def default_members() -> int:
    return env_int(ENV_MEMBERS, 8, min_value=2)


def default_level() -> float:
    return env_float(ENV_LEVEL, 0.8, min_value=0.5)


def default_ridge() -> float:
    return env_float(ENV_RIDGE, 1.0, min_value=0.0)


def default_seed() -> int:
    return env_int(ENV_SEED, 0)


@dataclass(frozen=True)
class SurrogateEstimate:
    """A model prediction standing in for one unsimulated cell.

    ``to_dict()`` always carries ``"surrogate": True`` so reports, store
    entries, and wire payloads can never be confused with detailed results.
    """

    workload: str
    predictor: str
    digest: str
    ipc: float
    ipc_ci: float
    violation_mpki: float
    violation_mpki_ci: float
    level: float
    model_sha256: str
    novel: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "surrogate": True,
            "workload": self.workload,
            "predictor": self.predictor,
            "digest": self.digest,
            "ipc": self.ipc,
            "ipc_ci": self.ipc_ci,
            "violation_mpki": self.violation_mpki,
            "violation_mpki_ci": self.violation_mpki_ci,
            "level": self.level,
            "model_sha256": self.model_sha256,
            "novel": self.novel,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SurrogateEstimate":
        if data.get("surrogate") is not True:
            raise ValueError("record is not a surrogate estimate")
        return cls(
            workload=str(data["workload"]),
            predictor=str(data["predictor"]),
            digest=str(data["digest"]),
            ipc=float(data["ipc"]),
            ipc_ci=float(data["ipc_ci"]),
            violation_mpki=float(data["violation_mpki"]),
            violation_mpki_ci=float(data["violation_mpki_ci"]),
            level=float(data["level"]),
            model_sha256=str(data["model_sha256"]),
            novel=bool(data["novel"]),
        )

    def summary(self) -> str:
        return (
            f"surrogate ipc={self.ipc:.3f}±{self.ipc_ci:.3f} "
            f"mpki={self.violation_mpki:.3f}±{self.violation_mpki_ci:.3f} "
            f"@{self.level:g}"
        )


class SurrogateStore:
    """Persisted estimates, in a namespace apart from detailed results.

    Same durability contract as :class:`~repro.harness.store.ResultStore`:
    atomic writes, CRC-guarded entries, and every corruption mode (missing
    file, truncation, schema or CRC mismatch, shape drift) reads as a miss.
    An ``OSError`` on put is swallowed — estimates are always recomputable.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    @property
    def estimates_dir(self) -> Path:
        return self.root / "surrogate"

    def path_for(self, digest: str) -> Path:
        return self.estimates_dir / f"{digest}.json"

    def put(self, estimate: SurrogateEstimate) -> Optional[Path]:
        record = estimate.to_dict()
        entry = {
            "schema": SURROGATE_SCHEMA,
            "key": estimate.digest,
            "estimate": record,
            "crc32": store_mod._record_crc(record),
        }
        try:
            return atomic_write_json(self.path_for(estimate.digest), entry)
        except OSError:
            return None

    def get(self, digest: str) -> Optional[SurrogateEstimate]:
        try:
            entry = json.loads(self.path_for(digest).read_text())
        except (OSError, ValueError):
            return None
        try:
            if entry["schema"] != SURROGATE_SCHEMA:
                return None
            if entry["key"] != digest:
                return None
            if entry["crc32"] != store_mod._record_crc(entry["estimate"]):
                return None
            return SurrogateEstimate.from_dict(entry["estimate"])
        except (KeyError, TypeError, ValueError):
            return None

    def count(self) -> int:
        if not self.estimates_dir.is_dir():
            return 0
        return sum(1 for _ in self.estimates_dir.glob("*.json"))


class SurrogateTier:
    """The planner-facing facade: score cells, settle the certain ones."""

    def __init__(
        self,
        model: "object",
        mode: str = "triage",
        max_ci_ipc: Optional[float] = None,
        max_ci_mpki: Optional[float] = None,
        store: Optional[SurrogateStore] = None,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"surrogate mode must be one of {MODES}, got {mode!r}")
        self.model = model
        self.mode = mode
        self.max_ci_ipc = (
            default_max_ci_ipc() if max_ci_ipc is None else max_ci_ipc
        )
        self.max_ci_mpki = (
            default_max_ci_mpki() if max_ci_mpki is None else max_ci_mpki
        )
        self.store = store

    def estimate(self, cell: "object") -> SurrogateEstimate:
        """Score one cell (CellSpec-shaped: workload/predictor/config/…)."""
        predicted = self.model.predict_cell(
            cell.workload,
            cell.predictor,
            cell.config,
            cell.num_ops,
            cell.seed,
        )
        return SurrogateEstimate(
            workload=cell.workload,
            predictor=cell.predictor,
            digest=cell.key().digest,
            ipc=predicted["ipc"],
            ipc_ci=predicted["ipc_ci"],
            violation_mpki=predicted["violation_mpki"],
            violation_mpki_ci=predicted["violation_mpki_ci"],
            level=predicted["level"],
            model_sha256=predicted["model_sha256"],
            novel=predicted["novel"],
        )

    def would_settle(self, estimate: SurrogateEstimate) -> bool:
        """Is this estimate certain enough to stand in for a simulation?

        ``only`` mode settles everything — the caller opted out of detail.
        ``triage`` requires the cell inside the training support (novel
        cells get spuriously tight intervals — see the model docs) *and*
        both interval halfwidths under their thresholds.
        """
        if self.mode == "off":
            return False
        if self.mode == "only":
            return True
        if estimate.novel:
            return False
        return (
            estimate.ipc_ci <= self.max_ci_ipc
            and estimate.violation_mpki_ci <= self.max_ci_mpki
        )

    def triage(
        self, cells: Sequence["object"]
    ) -> Dict[str, SurrogateEstimate]:
        """Settled estimates by digest; unsettled cells are simply absent."""
        settled: Dict[str, SurrogateEstimate] = {}
        for cell in cells:
            estimate = self.estimate(cell)
            if self.would_settle(estimate):
                settled[estimate.digest] = estimate
                if self.store is not None:
                    self.store.put(estimate)
        return settled

    def predict_all(
        self, cells: Iterable["object"]
    ) -> List[SurrogateEstimate]:
        """Unconditional estimates for every cell (the serving path)."""
        return [self.estimate(cell) for cell in cells]


def load_tier(
    model_path: Union[str, Path],
    mode: str = "triage",
    max_ci_ipc: Optional[float] = None,
    max_ci_mpki: Optional[float] = None,
    store: Optional[SurrogateStore] = None,
) -> SurrogateTier:
    """Build a tier from a model artifact, failing loudly when unusable.

    Unlike artifact *loads* (corruption-as-miss), asking for a triage tier
    with an unusable model is an operator error and raises — a sweep that
    silently fell back to full simulation would hide a misconfiguration.
    """
    from repro.surrogate.model import SurrogateError, load_model

    model = load_model(model_path)
    if model is None:
        raise SurrogateError(
            f"surrogate model at {model_path} is missing or corrupt; "
            "retrain with 'repro surrogate train' or fix the path"
        )
    return SurrogateTier(
        model,
        mode=mode,
        max_ci_ipc=max_ci_ipc,
        max_ci_mpki=max_ci_mpki,
        store=store,
    )
