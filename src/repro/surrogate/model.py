"""Bagged-ridge surrogate model with conformal confidence intervals.

The model is deliberately small: a bag of ridge regressors over the frozen
feature schema, one bag per target (IPC and violation MPKI). Ensemble
spread gives a per-prediction uncertainty *shape*; split-conformal
residuals on a disjoint calibration split scale that shape into an
interval with a distribution-free coverage guarantee. The triage tier
(:mod:`repro.surrogate.triage`) settles a cell only when the interval is
tight, so calibration — not point accuracy — is what the CI gate enforces.

numpy is the only dependency, guarded exactly like the ``batch`` backend:
the dataset layer stays importable everywhere, and only train/predict
raise a clear error when numpy is absent.

Predictions for cells outside the training support are flagged ``novel``:
a hashed predictor bucket the model never saw carries near-zero weight in
*every* member, so the members agree and the spread is spuriously tight —
exactly the case where the interval must not be trusted. Novel cells are
never settled in triage mode.

The artifact mirrors the ResultStore contract — versioned JSON, CRC32
guard, content digest — and every corruption mode loads as a miss.
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.common.atomicio import atomic_write_text
from repro.core.config import CoreConfig
from repro.harness import store as store_mod
from repro.surrogate.dataset import TARGETS, Dataset
from repro.surrogate.features import (
    FEATURE_SCHEMA_VERSION,
    cell_features,
    feature_names,
)

try:  # pragma: no cover - exercised via have_numpy()
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

#: Artifact schema of the model JSON record; a mismatch loads as a miss.
MODEL_SCHEMA = 1

#: Default nominal coverage of the conformal intervals. 0.8 keeps the
#: conformal order statistic k = ceil((n+1)·level) feasible for small
#: calibration splits (n ≥ 4); higher levels need n ≥ level/(1 − level).
DEFAULT_LEVEL = 0.8

DEFAULT_MEMBERS = 8
DEFAULT_RIDGE = 1.0


class SurrogateError(RuntimeError):
    """The surrogate model layer cannot run (numpy missing, bad data)."""


def have_numpy() -> bool:
    return _np is not None


def require_numpy() -> None:
    if _np is None:
        raise SurrogateError(
            "the surrogate model requires numpy, which is not installed; "
            "dataset building still works — install numpy to train or "
            "predict"
        )


class SurrogateModel:
    """A trained, serialisable surrogate with calibrated intervals."""

    def __init__(self, payload: Mapping[str, object]) -> None:
        require_numpy()
        self.payload = payload
        self._mean = _np.asarray(payload["scaler"]["mean"], dtype=float)
        self._std = _np.asarray(payload["scaler"]["std"], dtype=float)
        self._weights = {
            target: _np.asarray(payload["weights"][target], dtype=float)
            for target in TARGETS
        }
        self._center = {
            target: float(payload["center"][target]) for target in TARGETS
        }
        self._conformal = payload["conformal"]
        self._context = payload["context"]
        self._known_workloads = frozenset(payload["known_workloads"])
        self._known_predictors = frozenset(payload["known_predictors"])

    # ---------------------------------------------------------- identity --

    @property
    def content_sha256(self) -> str:
        return str(self.payload["content_sha256"])

    @property
    def level(self) -> float:
        return float(self.payload["level"])

    def summary(self) -> str:
        evaluation = self.payload.get("eval") or {}
        parts = [
            f"model {self.content_sha256[:12]}:",
            f"{self.payload['members']} members,",
            f"level={self.level:g}",
        ]
        if evaluation:
            parts.append(
                f"(heldout ipc_mape={evaluation['ipc']['mape']:.3f} "
                f"coverage={evaluation['ipc']['coverage']:.2f}/"
                f"{evaluation['violation_mpki']['coverage']:.2f})"
            )
        return " ".join(parts)

    # -------------------------------------------------------- prediction --

    def _member_predictions(self, matrix: "object") -> Dict[str, "object"]:
        scaled = (matrix - self._mean) / self._std
        augmented = _np.hstack(
            [scaled, _np.ones((scaled.shape[0], 1), dtype=float)]
        )
        return {
            target: augmented @ self._weights[target].T + self._center[target]
            for target in TARGETS
        }

    def predict_matrix(
        self, matrix: "object"
    ) -> Dict[str, Tuple["object", "object"]]:
        """(mean, CI halfwidth) arrays per target for a feature matrix."""
        per_member = self._member_predictions(_np.asarray(matrix, dtype=float))
        out: Dict[str, Tuple[object, object]] = {}
        for target in TARGETS:
            predictions = per_member[target]
            mean = predictions.mean(axis=1)
            spread = predictions.std(axis=1)
            conformal = self._conformal[target]
            halfwidth = float(conformal["q"]) * (
                spread + float(conformal["epsilon"])
            )
            out[target] = (mean, halfwidth)
        return out

    def is_novel(self, workload: str, predictor: str) -> bool:
        """True when the cell lies outside the training support.

        An unseen predictor label hashes to a bucket with near-zero weight
        in every ensemble member, so the members *agree* and the spread is
        spuriously tight — the interval cannot be trusted and triage must
        not settle the cell.
        """
        return (
            predictor not in self._known_predictors
            or workload not in self._known_workloads
        )

    def predict_cell(
        self,
        workload: str,
        predictor: str,
        config: Optional[CoreConfig],
        num_ops: int,
        seed: Optional[int],
    ) -> Dict[str, object]:
        """Point estimate + interval for one pending cell."""
        features = cell_features(
            workload,
            predictor,
            config,
            num_ops,
            seed,
            self._context.get(workload),
            self._context["__global__"],
        )
        predicted = self.predict_matrix([features])
        ipc_mean, ipc_half = predicted["ipc"]
        mpki_mean, mpki_half = predicted["violation_mpki"]
        return {
            "ipc": max(0.0, float(ipc_mean[0])),
            "ipc_ci": float(ipc_half[0]),
            "violation_mpki": max(0.0, float(mpki_mean[0])),
            "violation_mpki_ci": float(mpki_half[0]),
            "level": self.level,
            "novel": self.is_novel(workload, predictor),
            "model_sha256": self.content_sha256,
        }

    # -------------------------------------------------------- evaluation --

    def evaluate(
        self, dataset: Dataset, split: str = "heldout"
    ) -> Dict[str, Dict[str, float]]:
        """Honest error + empirical coverage on a split the fit never saw."""
        rows = dataset.rows_for(split)
        if not rows:
            raise SurrogateError(f"dataset has no rows in split {split!r}")
        matrix = _np.asarray([row["features"] for row in rows], dtype=float)
        predicted = self.predict_matrix(matrix)
        metrics: Dict[str, Dict[str, float]] = {}
        for target in TARGETS:
            truth = _np.asarray(
                [row["targets"][target] for row in rows], dtype=float
            )
            mean, halfwidth = predicted[target]
            error = _np.abs(mean - truth)
            covered = error <= halfwidth
            nonzero = _np.abs(truth) > 1e-9
            mape = (
                float((error[nonzero] / _np.abs(truth[nonzero])).mean())
                if nonzero.any()
                else 0.0
            )
            metrics[target] = {
                "rows": int(len(rows)),
                "mae": float(error.mean()),
                "mape": mape,
                "coverage": float(covered.mean()),
                "mean_halfwidth": float(_np.mean(halfwidth)),
            }
        return metrics

    # --------------------------------------------------------- persistence --

    def save(self, destination: Union[str, Path]) -> Path:
        target = Path(destination)
        if target.suffix != ".json":
            target = target / f"model-{self.content_sha256[:12]}.json"
        entry = dict(self.payload)
        entry["crc32"] = store_mod._record_crc(self.payload)
        return atomic_write_text(
            target, json.dumps(entry, sort_keys=True, indent=2) + "\n"
        )


def _fit_members(
    matrix: "object",
    truth: "object",
    members: int,
    ridge: float,
    seed: int,
) -> "object":
    """Bootstrap-bagged ridge fits; rows of the result are member weights."""
    samples, columns = matrix.shape
    identity = _np.eye(columns, dtype=float)
    weights = _np.empty((members, columns), dtype=float)
    for member in range(members):
        rng = _np.random.default_rng(seed + member)
        index = rng.integers(0, samples, samples)
        sampled = matrix[index]
        target = truth[index]
        gram = sampled.T @ sampled + ridge * identity
        weights[member] = _np.linalg.solve(gram, sampled.T @ target)
    return weights


def _conformal_quantile(
    scores: "object", level: float
) -> Tuple[float, bool]:
    """Split-conformal order statistic, clamped when n is too small.

    k = ceil((n+1)·level) is the standard finite-sample-valid rank; when it
    exceeds n (calibration split smaller than level/(1−level)) we clamp to
    the maximum score and flag it, trading the formal guarantee for a
    usable — and still conservative — interval.
    """
    ordered = _np.sort(scores)
    count = len(ordered)
    rank = math.ceil((count + 1) * level)
    clamped = rank > count
    return float(ordered[min(rank, count) - 1]), clamped


def train_model(
    dataset: Dataset,
    members: int = DEFAULT_MEMBERS,
    ridge: float = DEFAULT_RIDGE,
    seed: int = 0,
    level: float = DEFAULT_LEVEL,
) -> SurrogateModel:
    """Fit the ensemble on the train split, calibrate on the calib split."""
    require_numpy()
    if not 0.5 <= level < 1.0:
        raise SurrogateError(f"confidence level must be in [0.5, 1), got {level}")
    if members < 2:
        raise SurrogateError("ensemble needs at least 2 members for spread")
    train_rows = dataset.rows_for("train")
    calib_rows = dataset.rows_for("calib")
    if len(train_rows) < 2:
        raise SurrogateError(
            f"dataset has only {len(train_rows)} train rows; need at least 2"
        )
    matrix = _np.asarray([row["features"] for row in train_rows], dtype=float)
    mean = matrix.mean(axis=0)
    std = matrix.std(axis=0)
    std[std < 1e-12] = 1.0
    scaled = _np.hstack(
        [
            (matrix - mean) / std,
            _np.ones((matrix.shape[0], 1), dtype=float),
        ]
    )
    weights: Dict[str, List[List[float]]] = {}
    centers: Dict[str, float] = {}
    epsilons: Dict[str, float] = {}
    for target in TARGETS:
        truth = _np.asarray(
            [row["targets"][target] for row in train_rows], dtype=float
        )
        center = float(truth.mean())
        centers[target] = center
        # Minimum spread floor: members can agree exactly (tiny data, strong
        # ridge), and a zero-width interval would claim false certainty.
        epsilons[target] = max(1e-6, 0.05 * float(truth.std()))
        weights[target] = _fit_members(
            scaled, truth - center, members, ridge, seed
        ).tolist()
    payload: Dict[str, object] = {
        "schema": MODEL_SCHEMA,
        "feature_schema": FEATURE_SCHEMA_VERSION,
        "feature_names": feature_names(),
        "dataset_sha256": dataset.content_sha256,
        "members": members,
        "ridge": ridge,
        "seed": seed,
        "level": level,
        "scaler": {"mean": mean.tolist(), "std": std.tolist()},
        "center": centers,
        "weights": weights,
        "context": dataset.context,
        "known_workloads": sorted(
            {row["workload"] for row in train_rows + calib_rows}
        ),
        "known_predictors": sorted(
            {row["predictor"] for row in train_rows + calib_rows}
        ),
        "conformal": {
            target: {"q": 1.0, "epsilon": epsilons[target]}
            for target in TARGETS
        },
        "eval": None,
    }
    model = SurrogateModel(_seal(payload))
    # Calibrate: studentized residuals on the disjoint calib split. With no
    # calib rows we fall back to train residuals — optimistic, so flagged.
    conformal: Dict[str, Dict[str, object]] = {}
    source_rows = calib_rows if calib_rows else train_rows
    source = "calib" if calib_rows else "train"
    calib_matrix = _np.asarray(
        [row["features"] for row in source_rows], dtype=float
    )
    per_member = model._member_predictions(calib_matrix)
    for target in TARGETS:
        truth = _np.asarray(
            [row["targets"][target] for row in source_rows], dtype=float
        )
        predictions = per_member[target]
        spread = predictions.std(axis=1)
        scores = _np.abs(predictions.mean(axis=1) - truth) / (
            spread + epsilons[target]
        )
        quantile, clamped = _conformal_quantile(scores, level)
        conformal[target] = {
            "q": quantile,
            "epsilon": epsilons[target],
            "n_calib": int(len(source_rows)),
            "source": source,
            "clamped": bool(clamped or not calib_rows),
        }
    payload["conformal"] = conformal
    model = SurrogateModel(_seal(payload))
    if dataset.rows_for("heldout"):
        payload["eval"] = model.evaluate(dataset, "heldout")
        model = SurrogateModel(_seal(payload))
    return model


def _seal(payload: Dict[str, object]) -> Dict[str, object]:
    """Recompute the content digest after payload mutation."""
    body = {k: v for k, v in payload.items() if k != "content_sha256"}
    blob = json.dumps(body, sort_keys=True)
    sealed = dict(payload)
    sealed["content_sha256"] = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    return sealed


def load_model(path: Union[str, Path]) -> Optional[SurrogateModel]:
    """Load a model artifact, or ``None`` on any corruption mode."""
    require_numpy()
    try:
        entry = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    try:
        crc = entry.pop("crc32")
        if entry["schema"] != MODEL_SCHEMA:
            return None
        if entry["feature_schema"] != FEATURE_SCHEMA_VERSION:
            return None
        if crc != store_mod._record_crc(entry):
            return None
        body = {k: v for k, v in entry.items() if k != "content_sha256"}
        blob = json.dumps(body, sort_keys=True)
        if hashlib.sha256(blob.encode("utf-8")).hexdigest() != entry[
            "content_sha256"
        ]:
            return None
        if entry["feature_names"] != feature_names():
            return None
        return SurrogateModel(entry)
    except (KeyError, TypeError, ValueError):
        return None


def predictions_per_second(
    model: SurrogateModel, matrix: Sequence[Sequence[float]], repeats: int = 5
) -> float:
    """Throughput probe used by the speedup benchmark."""
    import time

    array = _np.asarray(matrix, dtype=float)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        model.predict_matrix(array)
        best = min(best, time.perf_counter() - start)
    return len(array) / best if best > 0 else float("inf")
