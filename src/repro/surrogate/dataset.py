"""Deterministic, content-addressed training datasets for the surrogate.

The dataset builder turns completed sweep cells into feature/target rows
under the frozen schema in :mod:`repro.surrogate.features`. Two sources
produce *identical* rows for the same cell:

* a :class:`~repro.harness.store.ResultStore` directory — every entry is
  validated exactly like ``ResultStore.get`` (schema, code version, CRC),
  so a corrupted entry is silently skipped rather than poisoning the
  dataset; and
* provenance records emitted by ``repro export --provenance`` — these
  carry the full RunSpec wire dict, so the exact CoreConfig is available
  even for cells whose fingerprint matches no known preset.

Store entries persist only the config *fingerprint*, so the builder
resolves it against the known presets (``GENERATIONS`` plus the default
core); an unknown fingerprint falls back to default-config feature values
with the ``cfg_unknown`` indicator raised.

Rows are sorted by cell digest and split deterministically by digest
bucket into ``heldout`` / ``calib`` / ``train`` *before* any aggregate is
computed; the per-workload context table is built from train rows only.
That ordering is what makes the artifact byte-identical across rebuilds
(including from a store written by a sharded multi-server run) and keeps
held-out error estimates honest.

The saved artifact mirrors the ResultStore entry contract: a versioned
JSON record with a CRC32 guard, loaded with every corruption mode reading
as a miss (``load_dataset`` returns ``None``).
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.common.atomicio import atomic_write_text
from repro.core.config import GENERATIONS, CoreConfig
from repro.harness import store as store_mod
from repro.surrogate.features import (
    FEATURE_SCHEMA_VERSION,
    build_context_table,
    cell_features,
    feature_names,
)
from repro.workloads.generator import GENERATOR_VERSION

#: Artifact schema of the dataset JSON record; a mismatch loads as a miss.
DATASET_SCHEMA = 1

#: Digest-bucket split (out of 10): kept apart from row contents so adding
#: rows never reshuffles existing cells between splits.
HELDOUT_BUCKETS = frozenset({0, 1})
CALIB_BUCKETS = frozenset({2, 3, 4})

TARGETS = ("ipc", "violation_mpki")


@dataclass(frozen=True)
class SourceRecord:
    """One validated completed cell, before featurization."""

    digest: str
    workload: str
    predictor: str
    core: str
    config_sha256: str
    num_ops: int
    seed: Optional[int]
    ipc: float
    violation_mpki: float
    branch_mpki: float
    intervals: Tuple[Mapping[str, object], ...] = ()
    config: Optional[CoreConfig] = field(default=None, compare=False)


def known_configs() -> Dict[str, CoreConfig]:
    """Fingerprint → CoreConfig for every named preset plus the default."""
    table: Dict[str, CoreConfig] = {}
    for config in (*GENERATIONS.values(), CoreConfig()):
        table.setdefault(store_mod.config_fingerprint(config), config)
    return table


def split_for_digest(digest: str) -> str:
    """Deterministic split assignment from the cell digest alone."""
    bucket = int(digest[:8], 16) % 10
    if bucket in HELDOUT_BUCKETS:
        return "heldout"
    if bucket in CALIB_BUCKETS:
        return "calib"
    return "train"


def _record_from_entry(
    entry: Mapping[str, object], digest: str
) -> Optional[SourceRecord]:
    """Validate one store entry exactly like ``ResultStore.get`` does."""
    try:
        if entry["schema"] != store_mod.SCHEMA_VERSION:
            return None
        if entry["code_version"] != store_mod.CODE_VERSION:
            return None
        if entry["key"] != digest:
            return None
        if entry["crc32"] != store_mod._record_crc(entry["result"]):
            return None
        cell = entry["cell"]
        result = entry["result"]
        seed = cell["seed"]
        return SourceRecord(
            digest=digest,
            workload=str(cell["workload"]),
            predictor=str(cell["predictor"]),
            core=str(cell["core"]),
            config_sha256=str(cell["config_sha256"]),
            num_ops=int(cell["num_ops"]),
            seed=None if seed is None else int(seed),
            ipc=float(result["ipc"]),
            violation_mpki=float(result["violation_mpki"]),
            branch_mpki=float(result["branch_mpki"]),
            intervals=tuple(result.get("intervals") or ()),
        )
    except (KeyError, TypeError, ValueError):
        return None


def extract_store_records(
    store_root: Union[str, Path],
) -> Tuple[List[SourceRecord], int]:
    """All valid completed cells in a store; returns (records, skipped).

    Corrupted entries — truncated JSON, schema/CRC mismatches, records that
    no longer parse — are counted as skipped, mirroring the store's own
    corruption-as-miss contract.
    """
    results_dir = store_mod.ResultStore(store_root).results_dir
    records: List[SourceRecord] = []
    skipped = 0
    if not results_dir.is_dir():
        return records, skipped
    for path in sorted(results_dir.glob("*.json")):
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            skipped += 1
            continue
        record = _record_from_entry(entry, path.stem)
        if record is None:
            skipped += 1
        else:
            records.append(record)
    return records, skipped


def records_from_provenance(
    provenance: Iterable[Mapping[str, object]],
) -> Tuple[List[SourceRecord], int]:
    """Source records from ``repro export --provenance`` output.

    Each record's spec wire dict is re-keyed and the digest verified, so a
    tampered or stale export cannot inject a row under the wrong cell
    identity. The exact CoreConfig travels with the spec, so these rows
    never need the fingerprint-lookup fallback.
    """
    from repro.sim.spec import RunSpec

    records: List[SourceRecord] = []
    skipped = 0
    for item in provenance:
        try:
            spec = RunSpec.from_wire(dict(item["spec"]))
            key = spec.key()
            if item["digest"] != key.digest:
                skipped += 1
                continue
            result = item["result"]
            records.append(
                SourceRecord(
                    digest=key.digest,
                    workload=spec.workload_name,
                    predictor=spec.predictor_label,
                    core=str(key.describe["core"]),
                    config_sha256=str(key.describe["config_sha256"]),
                    num_ops=int(key.describe["num_ops"]),
                    seed=spec.seed,
                    ipc=float(result["ipc"]),
                    violation_mpki=float(result["violation_mpki"]),
                    branch_mpki=float(result["branch_mpki"]),
                    intervals=tuple(result.get("intervals") or ()),
                    config=spec.config,
                )
            )
        except (KeyError, TypeError, ValueError):
            skipped += 1
    return records, skipped


@dataclass(frozen=True)
class Dataset:
    """An immutable, content-addressed dataset artifact."""

    payload: Mapping[str, object]

    @property
    def content_sha256(self) -> str:
        return str(self.payload["content_sha256"])

    @property
    def rows(self) -> Sequence[Mapping[str, object]]:
        return self.payload["rows"]

    @property
    def feature_names(self) -> Sequence[str]:
        return self.payload["feature_names"]

    @property
    def context(self) -> Mapping[str, Mapping[str, float]]:
        return self.payload["context"]

    def rows_for(self, split: str) -> List[Mapping[str, object]]:
        return [row for row in self.rows if row["split"] == split]

    def summary(self) -> str:
        counts = self.payload["splits"]
        return (
            f"dataset {self.content_sha256[:12]}: {len(self.rows)} rows "
            f"(train={counts['train']} calib={counts['calib']} "
            f"heldout={counts['heldout']}), "
            f"skipped={self.payload['source']['skipped']}"
        )

    def save(self, destination: Union[str, Path]) -> Path:
        """Write the artifact atomically; directories get the canonical name."""
        target = Path(destination)
        if target.suffix != ".json":
            target = target / f"dataset-{self.content_sha256[:12]}.json"
        entry = dict(self.payload)
        entry["crc32"] = store_mod._record_crc(self.payload)
        return atomic_write_text(
            target, json.dumps(entry, sort_keys=True, indent=2) + "\n"
        )


def build_dataset(
    records: Sequence[SourceRecord], skipped: int = 0
) -> Dataset:
    """Featurize validated cells into a deterministic dataset artifact.

    Duplicate digests keep the first occurrence (sorted order makes "first"
    deterministic too). The split is decided from the digest before the
    context table exists, and the context table sees train rows only.
    """
    unique: Dict[str, SourceRecord] = {}
    for record in sorted(records, key=lambda r: r.digest):
        unique.setdefault(record.digest, record)
    ordered = list(unique.values())
    splits = {record.digest: split_for_digest(record.digest) for record in ordered}
    context = build_context_table(
        [record for record in ordered if splits[record.digest] == "train"]
    )
    global_context = context["__global__"]
    configs = known_configs()
    rows: List[Dict[str, object]] = []
    counts = {"train": 0, "calib": 0, "heldout": 0}
    for record in ordered:
        config = record.config or configs.get(record.config_sha256)
        split = splits[record.digest]
        counts[split] += 1
        rows.append(
            {
                "digest": record.digest,
                "workload": record.workload,
                "predictor": record.predictor,
                "core": record.core,
                "num_ops": record.num_ops,
                "seed": record.seed,
                "split": split,
                "features": cell_features(
                    record.workload,
                    record.predictor,
                    config,
                    record.num_ops,
                    record.seed,
                    context.get(record.workload),
                    global_context,
                ),
                "targets": {
                    "ipc": record.ipc,
                    "violation_mpki": record.violation_mpki,
                },
            }
        )
    payload: Dict[str, object] = {
        "schema": DATASET_SCHEMA,
        "feature_schema": FEATURE_SCHEMA_VERSION,
        "generator_version": GENERATOR_VERSION,
        "feature_names": feature_names(),
        "targets": list(TARGETS),
        "context": context,
        "rows": rows,
        "splits": counts,
        "source": {"records": len(rows), "skipped": skipped},
    }
    blob = json.dumps(payload, sort_keys=True)
    payload["content_sha256"] = hashlib.sha256(blob.encode("utf-8")).hexdigest()
    return Dataset(payload=payload)


def build_store_dataset(store_root: Union[str, Path]) -> Dataset:
    """Convenience: extract + featurize straight from a result store."""
    records, skipped = extract_store_records(store_root)
    return build_dataset(records, skipped=skipped)


def load_dataset(path: Union[str, Path]) -> Optional[Dataset]:
    """Load an artifact, or ``None`` on any corruption mode.

    Missing file, invalid JSON, schema or feature-schema mismatch, CRC
    mismatch, and shape drift all read as a miss — the caller rebuilds,
    exactly like a corrupted store entry re-simulates.
    """
    try:
        entry = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    try:
        crc = entry.pop("crc32")
        if entry["schema"] != DATASET_SCHEMA:
            return None
        if entry["feature_schema"] != FEATURE_SCHEMA_VERSION:
            return None
        if crc != store_mod._record_crc(entry):
            return None
        blob_payload = {
            key: value
            for key, value in entry.items()
            if key != "content_sha256"
        }
        blob = json.dumps(blob_payload, sort_keys=True)
        digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()
        if digest != entry["content_sha256"]:
            return None
        if entry["feature_names"] != feature_names():
            return None
        return Dataset(payload=entry)
    except (KeyError, TypeError, ValueError):
        return None
