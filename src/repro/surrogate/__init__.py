"""Learned IPC/MPKI surrogate: dataset, model, triage, serving.

Layer map:

* :mod:`repro.surrogate.features` — the frozen, versioned feature schema.
* :mod:`repro.surrogate.dataset` — deterministic, content-addressed
  dataset artifacts built from a ResultStore or provenance export.
* :mod:`repro.surrogate.model` — the bagged-ridge ensemble with conformal
  confidence intervals (numpy-gated; everything else is pure Python).
* :mod:`repro.surrogate.triage` — the planner tier that settles tight-CI
  cells as tagged estimates and passes the rest to the simulator.

Model-layer names are re-exported lazily so importing the package (or the
dataset layer) never pulls in numpy.
"""

from repro.surrogate.dataset import (
    Dataset,
    SourceRecord,
    build_dataset,
    build_store_dataset,
    extract_store_records,
    load_dataset,
    records_from_provenance,
)
from repro.surrogate.features import FEATURE_SCHEMA_VERSION, feature_names
from repro.surrogate.triage import (
    SurrogateEstimate,
    SurrogateStore,
    SurrogateTier,
    load_tier,
)

__all__ = [
    "Dataset",
    "FEATURE_SCHEMA_VERSION",
    "SourceRecord",
    "SurrogateError",
    "SurrogateEstimate",
    "SurrogateModel",
    "SurrogateStore",
    "SurrogateTier",
    "build_dataset",
    "build_store_dataset",
    "extract_store_records",
    "feature_names",
    "load_dataset",
    "load_model",
    "load_tier",
    "records_from_provenance",
    "train_model",
]

_MODEL_NAMES = {"SurrogateError", "SurrogateModel", "load_model", "train_model"}


def __getattr__(name: str):
    if name in _MODEL_NAMES:
        from repro.surrogate import model

        return getattr(model, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
