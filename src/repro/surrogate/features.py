"""Frozen feature schema for the learned IPC/MPKI surrogate.

A feature vector must be computable for a *pending* cell — one that has
never been simulated — from exactly what the sweep planner knows: the
workload name, the predictor label, the :class:`~repro.core.config.
CoreConfig`, the raw ``num_ops`` (0 = "the default at run time", matching
the store key), and the seed. Anything derived from the cell's own result
would leak the target into the features, so per-workload aggregates of
*other* cells' results enter only through a context table computed from
the dataset's **train split** (see :mod:`repro.surrogate.dataset`) and
carried inside the model artifact for predict time.

The schema is versioned and frozen: :data:`FEATURE_SCHEMA_VERSION` is
stamped into every dataset and model artifact, and a mismatch reads as a
miss rather than silently mixing incompatible vectors. Categorical names
(predictor labels) are hashed into a fixed bucket space so the vector
length never depends on which names happen to be registered; the model
additionally records the exact label set it trained on, because a hashed
bucket carries no information about a label it never saw (see the novelty
guard in :mod:`repro.surrogate.model`).
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.config import CoreConfig
from repro.isa.microop import OpKind

#: Bump whenever the feature vector's length, order, or meaning changes.
#: Datasets and models stamp this; mixing versions is refused, never fuzzed.
FEATURE_SCHEMA_VERSION = 1

#: Hashed one-hot space for predictor labels. Wide enough that the current
#: registry (~15 labels) rarely collides; collisions degrade accuracy, not
#: correctness.
PREDICTOR_BUCKETS = 32

#: Motif kinds in frozen (sorted) order — the per-kind weight-fraction
#: features. New motif kinds must be appended via a schema bump.
MOTIF_KINDS = (
    "call_heavy",
    "data_dependent",
    "filler",
    "multi_store",
    "overwrite",
    "path",
    "spill_churn",
    "stable",
    "store_set_stress",
)

#: Context statistics per workload, in frozen order. ``None`` entries in a
#: context table fall back to the global row.
CONTEXT_STATS = (
    "ipc_mean",
    "ipc_std",
    "violation_mpki_mean",
    "violation_mpki_std",
    "branch_mpki_mean",
    "occupancy_mean",
    "interval_ipc_cov",
    "rows_log",
)


def predictor_bucket(label: str) -> int:
    """Stable hash bucket for a predictor label (endianness-free)."""
    digest = hashlib.sha256(label.encode("utf-8")).hexdigest()
    return int(digest[:8], 16) % PREDICTOR_BUCKETS


def feature_names() -> List[str]:
    """The frozen, ordered names of every feature in schema v1."""
    names = [
        "cfg_year",
        "cfg_dispatch_width",
        "cfg_commit_width",
        "cfg_rob_entries",
        "cfg_iq_entries",
        "cfg_lq_entries",
        "cfg_sq_entries",
        "cfg_dispatch_to_issue_latency",
        "cfg_branch_redirect_penalty",
        "cfg_violation_penalty",
        "cfg_store_drain_per_cycle",
        "cfg_forwarding_filter",
        "cfg_violation_squash_eager",
        "cfg_wrong_path_depth",
        "cfg_num_arch_regs",
        "cfg_load_ports",
        "cfg_store_ports",
        "cfg_unknown",
        "wl_seed",
        "wl_run_length_mean",
        "wl_motif_count",
        "wl_replica_total",
    ]
    names.extend(f"wl_weight_{kind}" for kind in MOTIF_KINDS)
    names.append("wl_unknown")
    names.extend(["cell_log_num_ops", "cell_default_ops"])
    names.extend(f"pred_bucket_{i:02d}" for i in range(PREDICTOR_BUCKETS))
    names.extend(f"ctx_{stat}" for stat in CONTEXT_STATS)
    names.append("ctx_missing")
    names.extend(f"px_ipc_{i:02d}" for i in range(PREDICTOR_BUCKETS))
    names.extend(f"px_viol_{i:02d}" for i in range(PREDICTOR_BUCKETS))
    return names


#: Vector length of schema v1 (the names list is the source of truth).
NUM_FEATURES = len(feature_names())


def _config_features(config: Optional[CoreConfig]) -> List[float]:
    unknown = config is None
    core = config or CoreConfig()
    return [
        float(core.year),
        float(core.dispatch_width),
        float(core.commit_width),
        float(core.rob_entries),
        float(core.iq_entries),
        float(core.lq_entries),
        float(core.sq_entries),
        float(core.dispatch_to_issue_latency),
        float(core.branch_redirect_penalty),
        float(core.violation_penalty),
        float(core.store_drain_per_cycle),
        1.0 if core.forwarding_filter else 0.0,
        1.0 if core.violation_squash == "eager" else 0.0,
        float(core.wrong_path_depth),
        float(core.num_arch_regs),
        float(core.ports.get(OpKind.LOAD, 0)),
        float(core.ports.get(OpKind.STORE, 0)),
        1.0 if unknown else 0.0,
    ]


def _workload_features(workload: str, seed: Optional[int]) -> List[float]:
    from repro.workloads.spec2017 import SPEC_PROFILES

    profile = SPEC_PROFILES.get(workload)
    if profile is None:
        return [0.0] * (4 + len(MOTIF_KINDS)) + [1.0]
    resolved_seed = profile.seed if seed is None else seed
    total_weight = sum(spec.weight for spec in profile.motifs)
    weight_of: Dict[str, float] = {}
    for spec in profile.motifs:
        weight_of[spec.kind] = weight_of.get(spec.kind, 0.0) + spec.weight
    features = [
        float(resolved_seed),
        float(profile.run_length_mean),
        float(len(profile.motifs)),
        float(sum(spec.replicas for spec in profile.motifs)),
    ]
    features.extend(
        weight_of.get(kind, 0.0) / total_weight for kind in MOTIF_KINDS
    )
    features.append(0.0)
    return features


def context_vector(
    context: Optional[Mapping[str, float]],
    global_context: Mapping[str, float],
) -> List[float]:
    """One workload's context stats (train-split aggregates), with fallback.

    A workload absent from the table — never seen in the train split — gets
    the global row plus a raised ``ctx_missing`` indicator, so the model can
    learn how much to distrust the fallback.
    """
    missing = context is None
    row = global_context if context is None else context
    values = [float(row.get(stat, 0.0)) for stat in CONTEXT_STATS]
    values.append(1.0 if missing else 0.0)
    return values


def cell_features(
    workload: str,
    predictor: str,
    config: Optional[CoreConfig],
    num_ops: int,
    seed: Optional[int],
    context: Optional[Mapping[str, float]],
    global_context: Mapping[str, float],
) -> List[float]:
    """The full schema-v1 feature vector for one cell.

    ``config=None`` means the cell's exact configuration could not be
    resolved (a store-derived row whose fingerprint matches no known
    preset): default-config values are used with ``cfg_unknown`` raised.
    ``num_ops`` is the *raw* store-key value (0 = default at run time).
    """
    features = _config_features(config)
    features.extend(_workload_features(workload, seed))
    features.append(math.log10(num_ops) if num_ops > 0 else 0.0)
    features.append(1.0 if num_ops == 0 else 0.0)
    bucket = predictor_bucket(predictor)
    one_hot = [0.0] * PREDICTOR_BUCKETS
    one_hot[bucket] = 1.0
    features.extend(one_hot)
    ctx = context_vector(context, global_context)
    features.extend(ctx)
    ipc_mean = ctx[CONTEXT_STATS.index("ipc_mean")]
    viol_mean = ctx[CONTEXT_STATS.index("violation_mpki_mean")]
    features.extend(value * ipc_mean for value in one_hot)
    features.extend(value * viol_mean for value in one_hot)
    if len(features) != NUM_FEATURES:  # pragma: no cover - schema invariant
        raise AssertionError(
            f"feature vector has {len(features)} entries, schema v"
            f"{FEATURE_SCHEMA_VERSION} declares {NUM_FEATURES}"
        )
    return features


def build_context_table(
    rows: Sequence["object"],
) -> Dict[str, Dict[str, float]]:
    """Per-workload context stats from *train-split* source rows.

    ``rows`` are :class:`~repro.surrogate.dataset.SourceRecord`-shaped
    objects (``workload``/``ipc``/``violation_mpki``/``branch_mpki``/
    ``intervals`` attributes). The returned table maps workload name to its
    :data:`CONTEXT_STATS` dict and includes a ``"__global__"`` row — the
    unweighted mean over per-workload rows — used as the fallback for
    workloads the train split never saw. Computing this from train rows
    only is what keeps held-out error estimates honest: a held-out cell's
    own IPC never reaches its features.
    """
    grouped: Dict[str, List[object]] = {}
    for row in rows:
        grouped.setdefault(row.workload, []).append(row)

    def mean(values: List[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    def std(values: List[float]) -> float:
        if len(values) < 2:
            return 0.0
        center = mean(values)
        return math.sqrt(
            sum((value - center) ** 2 for value in values) / len(values)
        )

    table: Dict[str, Dict[str, float]] = {}
    for workload, members in sorted(grouped.items()):
        ipcs = [row.ipc for row in members]
        viols = [row.violation_mpki for row in members]
        branches = [row.branch_mpki for row in members]
        occupancies: List[float] = []
        interval_covs: List[float] = []
        for row in members:
            intervals = getattr(row, "intervals", None) or ()
            window_ipcs = [
                float(window.get("ipc", 0.0)) for window in intervals
            ]
            window_occs = [
                float(window.get("occupancy", 0.0)) for window in intervals
            ]
            if window_occs:
                occupancies.append(mean(window_occs))
            if len(window_ipcs) >= 2 and mean(window_ipcs) > 0:
                interval_covs.append(std(window_ipcs) / mean(window_ipcs))
        table[workload] = {
            "ipc_mean": mean(ipcs),
            "ipc_std": std(ipcs),
            "violation_mpki_mean": mean(viols),
            "violation_mpki_std": std(viols),
            "branch_mpki_mean": mean(branches),
            "occupancy_mean": mean(occupancies),
            "interval_ipc_cov": mean(interval_covs),
            "rows_log": math.log10(1 + len(members)),
        }
    if table:
        table["__global__"] = {
            stat: mean([row[stat] for name, row in table.items()])
            for stat in CONTEXT_STATS
        }
    else:
        table["__global__"] = {stat: 0.0 for stat in CONTEXT_STATS}
    return table
