"""Capture and restore of full machine state, with a bit-identity contract.

``capture_state`` collects everything a paused :class:`~repro.core.pipeline.
PipelineRun` would need to continue — the component objects (predictor,
branch predictor, memory hierarchy, branch history), the accumulated
statistics, the invariant checker's cursor, the structural scheduling state
(cursors, rings, port bookings, the in-flight store window) and the state of
any checkpoint-aware probes — into one :class:`MachineState` tree.

The tree is *referenced*, not copied: isolation comes from the codec
(:mod:`repro.sampling.checkpoint`), which pickles the whole tree in one
pass. A single pickle is load-bearing twice over: it snapshots the state
without mutating the donor run, and it preserves intra-tree shared
references — PHAST and the pipeline must keep sharing one ``GlobalHistory``
after restore, or history snapshots diverge silently.

``restore_run`` rebuilds a :class:`~repro.core.pipeline.Pipeline` around the
restored components and returns a :class:`~repro.core.pipeline.PipelineRun`
positioned at the captured op index. Restore happens in a precise order:

1. the restored components are passed into ``Pipeline.__init__`` so the
   built-in probes (stats, MDP training, invariants) bind to them;
2. statistics and checker state are written *into* the objects those probes
   captured at construction (the probes hold references, not values);
3. ``Pipeline.begin`` builds and binds a fresh context, whose structural
   fields are then overwritten wholesale — legal because stage objects are
   built lazily on the first ``advance`` (see ``PipelineRun``).

The contract, enforced by ``tests/sampling``: a detailed run snapshotted at
any op and resumed through the codec produces bit-identical
``PipelineStats``/``MDPStats``/interval windows vs the uninterrupted run,
for every registered predictor.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.config import CoreConfig
from repro.core.pipeline import Pipeline, PipelineRun, PipelineStats
from repro.core.probes import Probe
from repro.frontend.branch_predictors import BranchPredictor
from repro.frontend.history import GlobalHistory
from repro.isa.trace import Trace
from repro.mdp.base import MDPredictor
from repro.memory.hierarchy import MemoryHierarchy
from repro.sampling.checkpoint import CheckpointFormatError

#: Context fields a checkpoint may carry. Detailed checkpoints carry all of
#: them; functional checkpoints carry only the architectural subset (fresh
#: zeros are the *correct* timing state when the clock rebases to 0).
_CTX_FIELDS = (
    # structural scheduling state
    "dispatch",
    "commit",
    "drain",
    "ports",
    "commit_ring",
    "issue_ring",
    "load_ring",
    "store_ring",
    "reg_ready",
    "window",
    # progress counters
    "load_count",
    "store_count",
    "frontend_ready",
    "last_commit",
    "last_fetch_line",
    "wrong_path_after",
    "warmup_end_cycle",
    # interval-boundary cursors
    "interval_index",
    "interval_op_count",
    "interval_start_cycle",
    "interval_start_op",
)


def _probe_id(probe: Probe) -> str:
    cls = type(probe)
    return f"{cls.__module__}.{cls.__qualname__}"


@dataclass
class MachineState:
    """One checkpoint's payload: components + counters + scheduling state.

    ``mode`` records how the state was produced: ``"detailed"`` states came
    from a paused detailed run and resume bit-identically; ``"functional"``
    states came from :class:`~repro.sampling.warming.FunctionalWarmer` and
    carry warmed architectural state over a fresh (cycle-0) timing state.
    """

    mode: str
    trace_name: str
    trace_len: int
    op_index: int
    total: int
    warmup_ops: int
    config: CoreConfig
    predictor: MDPredictor
    branch_predictor: BranchPredictor
    hierarchy: MemoryHierarchy
    history: GlobalHistory
    stats: PipelineStats
    checker_state: Optional[Dict[str, Any]]
    ctx_struct: Dict[str, Any]
    probe_states: List[Tuple[str, Any]]
    digests: Dict[str, int]


def component_digests(
    history: GlobalHistory, hierarchy: MemoryHierarchy, predictor: MDPredictor
) -> Dict[str, int]:
    """The per-structure self-check digests embedded in every checkpoint."""
    return {
        "history": history.checkpoint_digest(),
        "hierarchy": hierarchy.checkpoint_digest(),
        "predictor": predictor.checkpoint_digest(),
    }


def capture_state(run: PipelineRun) -> MachineState:
    """Snapshot a paused detailed run (no mutation; see module docstring).

    The returned tree aliases live objects — pass it straight to
    :func:`~repro.sampling.checkpoint.encode_checkpoint`; do not keep it
    across further ``advance`` calls.
    """
    pipeline = run.pipeline
    ctx = run.ctx
    probe_states: List[Tuple[str, Any]] = []
    for probe in pipeline.bus.probes:
        getter = getattr(probe, "checkpoint_state", None)
        if getter is not None:
            probe_states.append((_probe_id(probe), getter()))
    checker_state = (
        dict(pipeline.invariants.__dict__) if pipeline.invariants is not None else None
    )
    return MachineState(
        mode="detailed",
        trace_name=run.trace.name,
        trace_len=len(run.trace),
        op_index=run.next_index,
        total=ctx.total,
        warmup_ops=ctx.warmup_ops,
        config=pipeline.config,
        predictor=pipeline.predictor,
        branch_predictor=pipeline.branch_predictor,
        hierarchy=pipeline.hierarchy,
        history=pipeline.history,
        stats=pipeline.stats,
        checker_state=checker_state,
        ctx_struct={name: getattr(ctx, name) for name in _CTX_FIELDS},
        probe_states=probe_states,
        digests=component_digests(
            pipeline.history, pipeline.hierarchy, pipeline.predictor
        ),
    )


def restore_run(
    state: MachineState,
    trace: Trace,
    probes: Sequence[Probe] = (),
    check_invariants: Optional[bool] = None,
    total: Optional[int] = None,
    warmup_ops: Optional[int] = None,
    verify_digests: bool = True,
) -> PipelineRun:
    """Rebuild a runnable pipeline from a decoded checkpoint.

    ``trace`` must be the same trace the checkpoint was taken on (validated
    by name and length). ``total``/``warmup_ops`` default to the captured
    run geometry — the detailed-resume case; the sampled scheduler overrides
    both to point a functional checkpoint at one measured interval.

    ``probes`` are attached to the new pipeline's bus; any probe exposing
    the checkpoint-state protocol (``checkpoint_state()`` /
    ``restore_checkpoint_state(state)``) is re-seeded from the captured
    probe states, matched by class and attachment order.

    ``check_invariants=None`` mirrors the donor: the checker is enabled iff
    the donor ran with one (its cursor state is restored), keeping resumed
    self-checks meaningful rather than starting a checker mid-stream that
    never saw the prefix.
    """
    if trace.name != state.trace_name or len(trace) != state.trace_len:
        raise CheckpointFormatError(
            f"checkpoint was taken on trace {state.trace_name!r} "
            f"({state.trace_len} ops), got {trace.name!r} ({len(trace)} ops)"
        )
    if verify_digests:
        found = component_digests(state.history, state.hierarchy, state.predictor)
        if found != state.digests:
            drifted = sorted(
                name for name in found if found[name] != state.digests.get(name)
            )
            raise CheckpointFormatError(
                f"restored component state fails its self-check: {', '.join(drifted)}"
            )
    if check_invariants is None:
        check_invariants = state.checker_state is not None

    pipeline = Pipeline(
        config=state.config,
        predictor=state.predictor,
        branch_predictor=state.branch_predictor,
        hierarchy=state.hierarchy,
        check_invariants=check_invariants,
        probes=probes,
    )
    # The pipeline made itself a fresh history; the restored one replaces it
    # before ``begin`` snapshots it into the run context.
    pipeline.history = state.history
    # Stats and checker state restore *in place*: StatsProbe/InvariantProbe
    # captured these objects in Pipeline.__init__.
    for field in dataclass_fields(PipelineStats):
        setattr(pipeline.stats, field.name, getattr(state.stats, field.name))
    if pipeline.invariants is not None and state.checker_state is not None:
        pipeline.invariants.__dict__.update(state.checker_state)

    # Re-seed checkpoint-aware probes, matched by class then attachment order.
    saved: Dict[str, List[Any]] = {}
    for probe_id, payload in state.probe_states:
        saved.setdefault(probe_id, []).append(payload)
    for probe in pipeline.bus.probes:
        setter = getattr(probe, "restore_checkpoint_state", None)
        if setter is None:
            continue
        queue = saved.get(_probe_id(probe))
        if queue:
            setter(queue.pop(0))

    run = pipeline.begin(
        trace,
        max_ops=state.total if total is None else total,
        warmup_ops=state.warmup_ops if warmup_ops is None else warmup_ops,
    )
    ctx = run.ctx
    struct = state.ctx_struct
    for name in _CTX_FIELDS:
        if name in struct:
            setattr(ctx, name, struct[name])
    run.next_index = state.op_index
    return run
