"""Functional warming: architectural fast-forward without the timing model.

The sampled-simulation methodology (SMARTS/SimPoint lineage) needs machine
state at an interval's start that *remembers the whole prefix* — cold caches
and cold predictor tables at op 10M would bias every measurement — but it
cannot afford to pay detailed-simulation cost for the prefix. Functional
warming is the standard answer: walk every op of the prefix updating only
the long-lived architectural structures, skipping all cycle accounting.

What is warmed, mirroring exactly what the detailed model touches:

* the cache hierarchy — one ``fetch_access`` per fetch-line change (the
  dispatch stage's filter) and one ``load_access`` per load (which also
  trains the stride prefetcher); stores never touch the hierarchy, same as
  the detailed model (store data drains through the SB off the timing path);
* the branch predictor (``observe`` per branch) and the global history log;
* the memory dependence predictor — dispatch hooks for every load and
  store, plus *approximate* training: the truth store is the youngest
  overlapping store still in the window, a missed truth trains
  ``on_violation``, and every load delivers ``on_load_commit`` feedback —
  the same event set :class:`~repro.mdp.base.MDPTrainingProbe` routes,
  minus cycle-accurate issue timing;
* the in-flight store window and the SQ allocation cursors
  (``load_count``/``store_count``) — the distance-to-store-number
  conversion in the detailed model depends on cursor continuity;
* the wrong-path replay map, and phantom-load cache/predictor pollution
  after mispredicted branches (a one-line approximation of the detailed
  wrong-path replay).

What is *not* warmed — anything cycle-stamped: cursors, rings, port books,
MSHRs, the register scoreboard. A checkpoint taken here rebases the clock
to zero; ``snapshot`` therefore writes store-window records with zeroed
cycles (invisible to forwarding/violation — the warmed store's data is
semantically "already in the cache" — and imposing no wait-edge delay) and
clears the hierarchy's in-flight MSHRs.

The warmer advances several times faster than detailed simulation (the
``benchmarks/sampling_speedup.py`` harness measures the ratio end to end),
which is the entire budget the sampled pipeline spends on coverage.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import CoreConfig
from repro.core.context import _StoreWindow
from repro.core.lsq import StoreRecord
from repro.core.pipeline import PipelineStats
from repro.frontend.branch_predictors import BranchPredictor
from repro.frontend.history import GlobalHistory
from repro.frontend.tage import TAGEPredictor
from repro.isa.microop import OpKind
from repro.isa.trace import Trace
from repro.mdp.base import (
    LoadCommitInfo,
    LoadDispatchInfo,
    MDPredictor,
    StoreDispatchInfo,
    ViolationInfo,
)
from repro.memory.hierarchy import MemoryHierarchy
from repro.sampling.state import MachineState, component_digests


class FunctionalWarmer:
    """Fast-forwards a trace, warming architectural state only.

    One warmer makes one ascending pass over one trace; ``advance(until)``
    moves the cursor forward and ``snapshot()`` captures a functional
    :class:`~repro.sampling.state.MachineState` at the current op index.
    The sampled scheduler snapshots once per representative interval on a
    single pass — snapshots pickle the live tree, so warming continues
    unaffected afterwards.
    """

    def __init__(
        self,
        trace: Trace,
        predictor: MDPredictor,
        config: Optional[CoreConfig] = None,
        branch_predictor: Optional[BranchPredictor] = None,
    ) -> None:
        self.trace = trace
        self.config = config or CoreConfig()
        self.predictor = predictor
        self.branch_predictor = branch_predictor or TAGEPredictor()
        self.hierarchy = MemoryHierarchy(self.config.hierarchy)
        self.history = GlobalHistory()
        self.window = _StoreWindow(capacity=self.config.sq_entries + 32)
        self.next_index = 0
        self.load_count = 0
        self.store_count = 0
        self.last_fetch_line = -1
        self.wrong_path_after = {}
        self._wrong_path_depth = self.config.wrong_path_depth
        # Transient hand-off records, same reuse discipline as the stages.
        self._load_info = LoadDispatchInfo(
            pc=0, seq=0, hist_snapshot=0, store_count=0, history=self.history
        )
        self._store_info = StoreDispatchInfo(
            pc=0, seq=0, hist_snapshot=0, store_number=0, history=self.history
        )

    # ------------------------------------------------------------- per-op --

    def _warm_load(self, op, index: int, snapshot: int) -> None:
        predictor = self.predictor
        window = self.window
        mem = op.mem
        store_count = self.store_count
        self.hierarchy.load_access(op.pc, mem.address, index)

        candidates = window.candidates(mem.address, mem.size)
        truth = candidates[-1] if candidates else None

        info = self._load_info
        info.pc = op.pc
        info.seq = index
        info.hist_snapshot = snapshot
        info.store_count = store_count
        info.oracle_store_number = truth.store_number if truth is not None else None
        info.oracle_multi_store = False
        prediction = predictor.on_load_dispatch(info)

        # Resolve the prediction against the window the same way the memory
        # stage does, to decide whether it covers the truth store.
        predicted_number = None
        covered = False
        if prediction.is_dependence:
            if prediction.wait_all_older:
                covered = truth is not None
                if truth is not None:
                    predicted_number = truth.store_number
            for distance in prediction.distances:
                target = window.by_number(store_count - 1 - distance)
                if target is not None:
                    if predicted_number is None:
                        predicted_number = target.store_number
                    if truth is not None and target.store_number == truth.store_number:
                        covered = True
            for seq in prediction.store_seqs:
                target = window.by_seq(seq)
                if target is not None:
                    if predicted_number is None:
                        predicted_number = target.store_number
                    if truth is not None and target.store_number == truth.store_number:
                        covered = True

        violated = truth is not None and not covered
        if violated:
            predictor.on_violation(
                ViolationInfo(
                    load_pc=op.pc,
                    load_seq=index,
                    load_snapshot=snapshot,
                    load_store_count=store_count,
                    store_pc=truth.pc,
                    store_seq=truth.seq,
                    store_snapshot=truth.hist_snapshot,
                    store_number=truth.store_number,
                    history=self.history,
                )
            )
        predictor.on_load_commit(
            LoadCommitInfo(
                pc=op.pc,
                seq=index,
                hist_snapshot=snapshot,
                store_count=store_count,
                prediction=prediction,
                predicted_store_number=predicted_number,
                actual_store_number=truth.store_number if truth is not None else None,
                waited_correct=prediction.is_dependence and covered,
                false_positive=prediction.is_dependence and not covered,
                violated=violated,
                history=self.history,
            )
        )
        self.load_count += 1

    def _warm_store(self, op, index: int, snapshot: int) -> None:
        info = self._store_info
        info.pc = op.pc
        info.seq = index
        info.hist_snapshot = snapshot
        info.store_number = self.store_count
        self.predictor.on_store_dispatch(info)
        mem = op.mem
        # Zeroed cycles: under a rebased (cycle-0) clock this store's data is
        # semantically already in memory — invisible to forwarding/violation
        # checks (drain <= exec) and a no-op wait-edge (addr_ready - 1 < 0) —
        # while keeping window population and number/seq lookups warm.
        self.window.append(
            StoreRecord(
                seq=index,
                pc=op.pc,
                address=mem.address,
                size=mem.size,
                store_number=self.store_count,
                addr_ready=0,
                exec_cycle=0,
                drain_cycle=0,
                hist_snapshot=snapshot,
            )
        )
        self.store_count += 1

    def _warm_wrong_path(self, start_index: int, depth: int, index: int) -> None:
        """Phantom loads after a misprediction: cache + predictor pollution."""
        trace = self.trace
        info = self._load_info
        end = min(len(trace), start_index + depth)
        for phantom_index in range(start_index, end):
            op = trace[phantom_index]
            if not op.is_load:
                continue
            self.hierarchy.load_access(op.pc, op.mem.address, index)
            info.pc = op.pc
            info.seq = -phantom_index - 1
            info.hist_snapshot = self.history.snapshot()
            info.store_count = self.store_count
            info.oracle_store_number = None
            info.oracle_multi_store = False
            self.predictor.on_load_dispatch(info)

    # ------------------------------------------------------------ driving --

    def advance(self, until: Optional[int] = None) -> int:
        """Warm ops up to (but excluding) index ``until``; returns the cursor."""
        trace = self.trace
        total = len(trace)
        stop = total if until is None else min(until, total)
        start = self.next_index
        if stop <= start:
            return start

        hierarchy = self.hierarchy
        history = self.history
        observe = self.branch_predictor.observe
        snapshot_of = history.snapshot
        wrong_path_depth = self._wrong_path_depth
        wrong_path_after = self.wrong_path_after
        load_kind = OpKind.LOAD
        store_kind = OpKind.STORE
        branch_kind = OpKind.BRANCH

        for index in range(start, stop):
            op = trace[index]
            fetch_line = op.pc >> 6
            if fetch_line != self.last_fetch_line:
                self.last_fetch_line = fetch_line
                hierarchy.fetch_access(op.pc, index)
            kind = op.kind
            if kind is load_kind:
                self._warm_load(op, index, snapshot_of())
            elif kind is store_kind:
                self._warm_store(op, index, snapshot_of())
            elif kind is branch_kind:
                branch = op.branch
                mispredicted = observe(op.pc, branch.kind, branch.taken, branch.target)
                if wrong_path_depth:
                    if mispredicted:
                        wrong_index = wrong_path_after.get((op.pc, not branch.taken))
                        if wrong_index is not None:
                            self._warm_wrong_path(wrong_index, wrong_path_depth, index)
                    wrong_path_after.setdefault((op.pc, branch.taken), index + 1)
                history.record(op.pc, branch)
        self.next_index = stop
        return stop

    def snapshot(self) -> MachineState:
        """Capture a functional checkpoint at the current op index.

        The returned tree aliases the warmer's live objects — encode it
        (which pickles a copy) before calling ``advance`` again.
        """
        self.hierarchy.reset_transients()  # MSHRs are cycle-stamped: drop them
        return MachineState(
            mode="functional",
            trace_name=self.trace.name,
            trace_len=len(self.trace),
            op_index=self.next_index,
            total=len(self.trace),
            warmup_ops=0,
            config=self.config,
            predictor=self.predictor,
            branch_predictor=self.branch_predictor,
            hierarchy=self.hierarchy,
            history=self.history,
            stats=PipelineStats(),
            checker_state=None,
            ctx_struct={
                "window": self.window,
                "load_count": self.load_count,
                "store_count": self.store_count,
                "last_fetch_line": self.last_fetch_line,
                "wrong_path_after": self.wrong_path_after,
            },
            probe_states=[],
            digests=component_digests(self.history, self.hierarchy, self.predictor),
        )
