"""The machine-state checkpoint codec: versioned, CRC-guarded, compressed.

Same discipline as the binary trace codec (:mod:`repro.isa.serialize`): a
fixed header carrying a magic, a format version and a CRC over the payload,
with every corruption mode — short data, wrong magic, version drift, CRC
mismatch, an undecodable payload — raising :class:`CheckpointFormatError`.
Store layers treat that error as a cache *miss* (the checkpoint is simply
re-warmed), never as a crash.

The payload is a zlib-compressed pickle of a :class:`~repro.sampling.state.
MachineState` tree. Pickle is the right tool here, unlike for traces: a
checkpoint holds arbitrary predictor objects (every registered predictor,
including user-registered ones), and a single pickle of the whole tree
preserves the *intra-tree shared references* the simulator relies on (e.g.
PHAST holding the same ``GlobalHistory`` the pipeline appends to). The
format version is bumped whenever the captured state tree's shape changes,
so stale checkpoints age out as misses instead of resuming wrongly.
"""

from __future__ import annotations

import io
import pickle
import struct
import zlib

#: First bytes of every checkpoint artifact.
CHECKPOINT_MAGIC = b"RCKP"
#: Bump when the captured state tree's shape changes incompatibly.
CHECKPOINT_VERSION = 1

#: magic, format version, reserved, payload length, payload crc32
_HEADER = struct.Struct("<4sHHII")


class CheckpointFormatError(ValueError):
    """A checkpoint artifact is unreadable (treat as a cache miss)."""


class _RestrictedUnpickler(pickle.Unpickler):
    """Unpickler that only resolves classes from this package (+ stdlib).

    Checkpoints are local build artifacts, not an interchange format, but
    the store directory is user-writable; refusing to resolve anything
    outside ``repro.*``, ``numpy`` and the stdlib containers keeps a
    tampered artifact from importing arbitrary callables.
    """

    _ALLOWED_PREFIXES = ("repro.", "numpy", "collections", "builtins", "array")

    def find_class(self, module: str, name: str):
        if module.split(".")[0] in ("repro",) or any(
            module == prefix or module.startswith(prefix)
            for prefix in self._ALLOWED_PREFIXES
        ):
            return super().find_class(module, name)
        raise CheckpointFormatError(
            f"checkpoint references disallowed class {module}.{name}"
        )


def encode_checkpoint(state) -> bytes:
    """Serialise a machine-state tree into a self-validating artifact."""
    payload = zlib.compress(
        pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL), level=6
    )
    header = _HEADER.pack(
        CHECKPOINT_MAGIC,
        CHECKPOINT_VERSION,
        0,
        len(payload),
        zlib.crc32(payload),
    )
    return header + payload


def decode_checkpoint(data: bytes):
    """Inverse of :func:`encode_checkpoint`.

    Raises :class:`CheckpointFormatError` on every corruption mode; callers
    holding a store treat that as a miss and re-warm.
    """
    if len(data) < _HEADER.size:
        raise CheckpointFormatError(
            f"checkpoint too short: {len(data)} bytes < {_HEADER.size}-byte header"
        )
    magic, version, _reserved, length, crc = _HEADER.unpack_from(data)
    if magic != CHECKPOINT_MAGIC:
        raise CheckpointFormatError(f"bad magic {magic!r}")
    if version != CHECKPOINT_VERSION:
        raise CheckpointFormatError(
            f"checkpoint format v{version}, this build reads v{CHECKPOINT_VERSION}"
        )
    payload = data[_HEADER.size :]
    if len(payload) != length:
        raise CheckpointFormatError(
            f"payload truncated: header says {length} bytes, got {len(payload)}"
        )
    if zlib.crc32(payload) != crc:
        raise CheckpointFormatError("payload CRC mismatch")
    try:
        raw = zlib.decompress(payload)
        state = _RestrictedUnpickler(io.BytesIO(raw)).load()
    except CheckpointFormatError:
        raise
    except Exception as error:  # zlib.error, pickle errors, EOFError, ...
        raise CheckpointFormatError(f"undecodable payload: {error}") from None
    return state
