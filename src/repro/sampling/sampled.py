"""Checkpointed sampled simulation: the interval scheduler and aggregator.

``run_sampled`` is the subsystem's entry point. For one
:class:`~repro.sim.spec.RunSpec` it:

1. clusters the trace's interval BBVs and picks representative intervals
   (:func:`repro.analysis.simpoints.choose_simpoints` — the same selection
   the SimPoint driver uses);
2. acquires a machine-state checkpoint just before each representative —
   from the content-addressed :class:`~repro.isa.artifacts.CheckpointStore`
   when one was warmed before (keyed by run identity, trace digest, op
   index and both format/semantics versions), else by a *single ascending
   functional-warming pass* (:class:`~repro.sampling.warming.
   FunctionalWarmer`) that snapshots at every missing index;
3. runs each representative interval in detail — restored from its
   checkpoint, with a short detailed-warmup lead replayed in front of the
   measured region — inline or fanned out across worker processes through
   the harness's :class:`~repro.harness.executor.ProcessCellExecutor`;
4. aggregates the per-interval measurements into one
   :class:`~repro.sim.metrics.SimResult` whose counters are
   cluster-weight-scaled estimates and whose ``sampling`` field carries the
   geometry plus 95% sampling-error bounds
   (:class:`~repro.sim.replication.WeightedMetric`).

Interval geometry, for a representative starting at op ``S`` with detailed
lead ``L``: the checkpoint pauses at ``F = S - L``; the restored run gets
``warmup_ops = S`` and ``max_ops = S + interval_ops``, so ops ``[F, S)``
replay in detailed mode without counting and exactly ``[S, S + interval)``
are measured — the same warmup-exclusion contract as a straight
``Pipeline.run``.
"""

from __future__ import annotations

import traceback
from dataclasses import asdict, dataclass, fields as dataclass_fields
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.simpoints import SimPoint, choose_simpoints
from repro.common.env import env_int
from repro.core.pipeline import PipelineStats
from repro.harness.executor import ProcessCellExecutor
from repro.isa.artifacts import CheckpointStore, TraceStore, checkpoint_key
from repro.isa.trace import Trace
from repro.mdp.base import MDPStats
from repro.sampling.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointFormatError,
    decode_checkpoint,
    encode_checkpoint,
)
from repro.sampling.state import MachineState, restore_run
from repro.sampling.warming import FunctionalWarmer
from repro.sim.metrics import SamplingSummary, SimResult
from repro.sim.replication import WeightedMetric
from repro.sim.simulator import get_trace, make_predictor
from repro.sim.spec import RunSpec

#: Environment knobs for the sampled-run geometry (see repro.common.env).
SAMPLE_INTERVAL_ENV = "REPRO_SAMPLE_INTERVAL_OPS"
SAMPLE_WARMUP_ENV = "REPRO_SAMPLE_WARMUP_OPS"

_FALLBACK_INTERVAL_OPS = 2000
_FALLBACK_WARMUP_OPS = 400

#: Version of the functional-warming *semantics* (what state a checkpoint's
#: warmed structures contain). Participates in the checkpoint key alongside
#: the codec's CHECKPOINT_VERSION: bump it when warming itself changes
#: meaning, so stale artifacts age out as misses.
WARMING_VERSION = 1


def default_sample_interval_ops() -> int:
    """Measured ops per representative interval (REPRO_SAMPLE_INTERVAL_OPS)."""
    return env_int(SAMPLE_INTERVAL_ENV, _FALLBACK_INTERVAL_OPS, min_value=1)


def default_sample_warmup_ops() -> int:
    """Detailed-warmup lead per interval (REPRO_SAMPLE_WARMUP_OPS)."""
    return env_int(SAMPLE_WARMUP_ENV, _FALLBACK_WARMUP_OPS, min_value=0)


@dataclass(frozen=True)
class IntervalJob:
    """One representative interval, shippable to a worker process.

    Carries the encoded checkpoint (bytes survive pickling to the worker
    unchanged — the codec validates them again on the other side) plus the
    interval geometry. Satisfies the executor's job contract:
    ``describe()`` for failure manifests; no store key (interval runs are
    aggregated, never individually durable).
    """

    spec: RunSpec
    checkpoint: bytes
    interval_index: int
    start_op: int
    interval_ops: int
    weight: float

    def describe(self) -> Dict[str, object]:
        return {
            **self.spec.describe(),
            "interval_index": self.interval_index,
            "start_op": self.start_op,
            "interval_ops": self.interval_ops,
        }


def _job_trace(spec: RunSpec) -> Trace:
    store = TraceStore(spec.trace_dir) if spec.trace_dir else None
    return get_trace(spec.resolved_profile(), spec.resolved_num_ops(), store=store)


def _run_interval(
    job: IntervalJob, trace: Trace, check_invariants: Optional[bool]
) -> SimResult:
    """Restore one checkpoint, run its interval in detail, measure the delta."""
    state = decode_checkpoint(job.checkpoint)
    run = restore_run(
        state,
        trace,
        check_invariants=check_invariants,
        total=job.start_op + job.interval_ops,
        warmup_ops=job.start_op,
    )
    predictor = run.pipeline.predictor
    # Functional warming already bumped the MDP counters over the prefix;
    # the interval's contribution is the delta across the detailed run.
    before = asdict(predictor.stats)
    run.advance()
    stats = run.finish()
    after = asdict(predictor.stats)
    mdp = MDPStats(**{name: after[name] - before[name] for name in after})
    return SimResult(
        workload=trace.name,
        predictor=predictor.name,
        core=run.pipeline.config.name,
        pipeline=stats,
        mdp=mdp,
        paths_tracked=getattr(predictor, "paths_tracked", None),
    )


def _interval_worker(conn, job: IntervalJob, check_invariants: bool) -> None:
    """Subprocess entry point for one interval (executor ``worker=`` hook)."""
    from repro.sim.invariants import SimInvariantError

    try:
        result = _run_interval(
            job, _job_trace(job.spec), True if check_invariants else None
        )
        conn.send(("ok", result.to_record()))
    except SimInvariantError as exc:
        conn.send(("invariant", {"message": str(exc), "detail": exc.to_dict()}))
    except MemoryError:
        conn.send(("oom", {"message": "MemoryError in interval worker"}))
    except BaseException as exc:  # noqa: BLE001 — report, parent classifies
        conn.send(
            (
                "error",
                {
                    "message": f"{type(exc).__name__}: {exc}",
                    "detail": {"traceback": traceback.format_exc()},
                },
            )
        )
    finally:
        conn.close()


def _fresh_predictor(spec: RunSpec):
    if isinstance(spec.predictor, str):
        return make_predictor(spec.predictor)
    return type(spec.predictor)()


def _acquire_checkpoints(
    spec: RunSpec,
    trace: Trace,
    points: Sequence[SimPoint],
    interval_ops: int,
    lead_ops: int,
    store: Optional[CheckpointStore],
) -> Tuple[List[bytes], int, int]:
    """An encoded checkpoint per representative; returns (blobs, reused, warmed).

    Store hits are decode-validated here — any corruption mode reads as a
    miss and the index is re-warmed. Misses are filled by one ascending
    functional-warming pass over the trace prefix, snapshotting (and
    persisting) at each missing pause index.
    """
    trace_digest = spec.trace_key().digest
    pause_ops = []
    keys = []
    for point in points:
        start = point.interval_index * interval_ops
        pause_ops.append(start - min(lead_ops, start))
        keys.append(
            checkpoint_key(
                spec.describe(),
                trace_digest,
                pause_ops[-1],
                CHECKPOINT_VERSION,
                WARMING_VERSION,
            )
        )

    blobs: List[Optional[bytes]] = [None] * len(points)
    reused = 0
    if store is not None:
        for slot, key in enumerate(keys):
            data = store.load(key)
            if data is None:
                continue
            try:
                decode_checkpoint(data)
            except CheckpointFormatError:
                continue  # corruption/version drift: re-warm below
            blobs[slot] = data
            reused += 1

    missing = sorted(
        {pause for slot, pause in enumerate(pause_ops) if blobs[slot] is None}
    )
    warmed = len(missing)
    if missing:
        warmer = FunctionalWarmer(
            trace,
            predictor=_fresh_predictor(spec),
            config=spec.resolved_config(),
            branch_predictor=spec.branch_predictor,
        )
        fresh: Dict[int, bytes] = {}
        for pause in missing:
            warmer.advance(pause)
            fresh[pause] = encode_checkpoint(warmer.snapshot())
        for slot, pause in enumerate(pause_ops):
            if blobs[slot] is None:
                blobs[slot] = fresh[pause]
                if store is not None:
                    store.save(keys[slot], fresh[pause])
    return [blob for blob in blobs if blob is not None], reused, warmed


def _scaled_stats(
    cls, per_point: Sequence[object], weights: Sequence[float], scale: float
):
    """Cluster-weighted whole-trace estimate of a counter dataclass.

    Each representative's counters stand for its whole cluster:
    ``estimate = scale · Σ ŵ_k · counter_k`` with ``scale`` the total
    interval count. Counters round to ints; derived rates (IPC, MPKI) then
    fall out of the estimated totals.
    """
    total_weight = sum(weights) or 1.0
    estimate = {}
    for field in dataclass_fields(cls):
        weighted = sum(
            weight * getattr(point, field.name)
            for weight, point in zip(weights, per_point)
        )
        estimate[field.name] = round(scale * weighted / total_weight)
    return cls(**estimate)


def run_sampled(
    spec: RunSpec,
    interval_ops: Optional[int] = None,
    warmup_ops: Optional[int] = None,
    max_clusters: int = 5,
    seed: int = 0,
    checkpoint_store: Optional[CheckpointStore] = None,
    workers: int = 1,
) -> SimResult:
    """Estimate a full-trace result from checkpointed representative intervals.

    ``interval_ops``/``warmup_ops`` default to the ``REPRO_SAMPLE_*``
    environment knobs. ``seed`` seeds the k-means clustering.
    ``checkpoint_store``, when given, makes warmed checkpoints durable and
    reusable across processes (and across predictors' *detailed* phases —
    the key includes the predictor, so each run warms its own). With
    ``workers > 1`` the interval runs fan out through the harness executor
    in worker processes (the spec must then be picklable — use registry
    predictor names); ``workers <= 1`` runs them inline.

    The returned :class:`~repro.sim.metrics.SimResult` is an *estimate*:
    ``pipeline``/``mdp`` counters are cluster-weight-scaled to the whole
    trace, and ``result.sampling`` carries the sampling geometry, the
    weighted-mean IPC / violation-MPKI estimators and their 95%
    sampling-error half-widths. ``result.sampling.ipc`` (a weighted mean of
    per-interval IPCs) and ``result.pipeline.ipc`` (a ratio of estimated
    totals) agree up to interval-length variation.
    """
    interval_ops = (
        default_sample_interval_ops() if interval_ops is None else interval_ops
    )
    lead_ops = default_sample_warmup_ops() if warmup_ops is None else warmup_ops
    if interval_ops <= 0:
        raise ValueError(f"interval_ops must be positive, got {interval_ops}")
    if lead_ops < 0:
        raise ValueError(f"warmup_ops must be >= 0, got {lead_ops}")

    trace = _job_trace(spec)
    num_intervals = len(trace) // interval_ops
    points = choose_simpoints(trace, interval_ops, max_clusters, seed=seed)
    blobs, reused, warmed = _acquire_checkpoints(
        spec, trace, points, interval_ops, lead_ops, checkpoint_store
    )

    jobs = [
        IntervalJob(
            spec=spec,
            checkpoint=blob,
            interval_index=point.interval_index,
            start_op=point.interval_index * interval_ops,
            interval_ops=interval_ops,
            weight=point.weight,
        )
        for point, blob in zip(points, blobs)
    ]

    results: List[SimResult] = []
    if workers > 1:
        executor = ProcessCellExecutor(
            workers=workers,
            check_invariants=bool(spec.check_invariants),
            worker=_interval_worker,
        )
        for outcome in executor.run_many(jobs):
            if outcome.result is None:
                failure = outcome.failure
                raise RuntimeError(
                    f"interval run failed ({failure.kind.value}): {failure.message}"
                )
            results.append(outcome.result)
    else:
        for job in jobs:
            results.append(_run_interval(job, trace, spec.check_invariants))

    weights = [job.weight for job in jobs]
    ipc = WeightedMetric(
        "ipc", [result.ipc for result in results], weights
    )
    violation_mpki = WeightedMetric(
        "violation_mpki", [result.violation_mpki for result in results], weights
    )
    pipeline = _scaled_stats(
        PipelineStats, [result.pipeline for result in results], weights, num_intervals
    )
    mdp = _scaled_stats(
        MDPStats, [result.mdp for result in results], weights, num_intervals
    )
    summary = SamplingSummary(
        interval_ops=interval_ops,
        warmup_ops=lead_ops,
        total_ops=len(trace),
        simulated_ops=sum(
            job.interval_ops + min(lead_ops, job.start_op) for job in jobs
        ),
        num_intervals=num_intervals,
        num_representatives=len(jobs),
        ipc=ipc.mean,
        ipc_ci95=ipc.ci95_half_width,
        violation_mpki=violation_mpki.mean,
        violation_mpki_ci95=violation_mpki.ci95_half_width,
        checkpoints_warmed=warmed,
        checkpoints_reused=reused,
    )
    return SimResult(
        workload=trace.name,
        predictor=results[0].predictor if results else spec.predictor_label,
        core=spec.resolved_config().name,
        pipeline=pipeline,
        mdp=mdp,
        sampling=summary,
    )
