"""Checkpointed sampled simulation.

The paper simulates SimPoint-selected 100M-instruction intervals; full
detailed simulation at that length is what this package buys back:

* :mod:`repro.sampling.warming` — functional warming: fast-forward a trace
  updating only architectural/predictor state (caches, branch history,
  TAGE, MDP tables, the store window), no timing model;
* :mod:`repro.sampling.checkpoint` — the versioned, CRC-guarded machine
  state codec (``RCKP``), in the style of :mod:`repro.isa.serialize`;
* :mod:`repro.sampling.state` — capture/restore of full machine state with
  the bit-identity contract: a detailed run snapshotted at op *k* and
  resumed produces exactly the statistics of the uninterrupted run;
* :mod:`repro.sampling.sampled` — the interval scheduler: BBV clustering
  picks representatives (:mod:`repro.analysis.simpoints`), one warmed
  checkpoint per representative (content-addressed in a
  :class:`repro.isa.artifacts.CheckpointStore`), detailed interval runs
  fanned out through the harness executor, and weighted aggregation with
  a stratified sampling-error bound on IPC.
"""

from repro.sampling.checkpoint import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    CheckpointFormatError,
    decode_checkpoint,
    encode_checkpoint,
)
from repro.sampling.sampled import (
    SAMPLE_INTERVAL_ENV,
    SAMPLE_WARMUP_ENV,
    default_sample_interval_ops,
    default_sample_warmup_ops,
    run_sampled,
)
from repro.sampling.state import MachineState, capture_state, restore_run
from repro.sampling.warming import FunctionalWarmer

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CheckpointFormatError",
    "FunctionalWarmer",
    "MachineState",
    "SAMPLE_INTERVAL_ENV",
    "SAMPLE_WARMUP_ENV",
    "capture_state",
    "decode_checkpoint",
    "default_sample_interval_ops",
    "default_sample_warmup_ops",
    "encode_checkpoint",
    "restore_run",
    "run_sampled",
]
