"""Branch direction predictors spanning 30 years of designs.

These regenerate Figure 1's gray-circle sweep (branch-prediction MPKI over
time) and give the pipeline a realistic front end. Each predictor answers a
direction for conditional branches and a target for indirect branches; the
pipeline charges a redirect penalty on either kind of mistake.

The roster, in rough chronological order of the ideas:

* :class:`AlwaysTakenPredictor` — static (pre-history baseline).
* :class:`BimodalPredictor` — per-PC 2-bit counters (Smith).
* :class:`TwoLevelLocalPredictor` — per-branch local history (Yeh & Patt).
* :class:`GSharePredictor` — global history XOR PC (McFarling).
* :class:`CombiningPredictor` — bimodal + gshare with a chooser (McFarling).
* :class:`PerceptronPredictor` — linear threshold over history (Jiménez & Lin).
* :class:`TAGEPredictor` (in :mod:`repro.frontend.tage`) — tagged geometric
  history lengths (Seznec), the family the paper's TAGE-SC-L belongs to.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

from repro.common.bitops import ceil_log2, mask
from repro.common.counters import SignedSaturatingCounter
from repro.isa.microop import BranchKind


class IndirectTargetTable:
    """A small last-target cache for indirect branches.

    Indexed by PC hashed with a few bits of global path history, so
    alternating indirect targets that correlate with the path are captured.
    Older predictors share this component; the interesting differences between
    them are in conditional direction prediction.
    """

    def __init__(self, entries: int = 512, path_bits: int = 4) -> None:
        self._entries = entries
        self._path_bits = path_bits
        self._index_bits = ceil_log2(entries)
        self._table: Dict[int, int] = {}
        self._path = 0

    def _index(self, pc: int) -> int:
        return (pc ^ (self._path << 1)) & mask(self._index_bits)

    def predict(self, pc: int) -> Optional[int]:
        return self._table.get(self._index(pc))

    def update(self, pc: int, target: int) -> None:
        self._table[self._index(pc)] = target
        self._path = ((self._path << 1) ^ target) & mask(self._path_bits)

    def storage_bits(self) -> int:
        # 32-bit target per entry plus the path register.
        return self._entries * 32 + self._path_bits


class BranchPredictor(abc.ABC):
    """Interface shared by all direction predictors."""

    name: str = "abstract"
    year: int = 0  # publication year, for Figure 1's x axis

    def __init__(self) -> None:
        self._indirect = IndirectTargetTable()

    @abc.abstractmethod
    def predict(self, pc: int) -> bool:
        """Predicted direction for a conditional branch at ``pc``."""

    @abc.abstractmethod
    def update(self, pc: int, taken: bool) -> None:
        """Train with the resolved direction of a conditional branch."""

    @abc.abstractmethod
    def storage_bits(self) -> int:
        """Total predictor state in bits (excluding the indirect table)."""

    def predict_target(self, pc: int) -> Optional[int]:
        """Predicted target for an indirect branch (None = no information)."""
        return self._indirect.predict(pc)

    def update_target(self, pc: int, target: int) -> None:
        self._indirect.update(pc, target)

    def observe(self, pc: int, kind: BranchKind, taken: bool, target: int) -> bool:
        """Predict-then-train convenience used by the pipeline and Figure 1.

        Returns True when the branch was *mispredicted*. Unconditional direct
        branches, calls and returns are assumed correctly predicted (BTB +
        return address stack are not the bottleneck studied here).
        """
        if kind is BranchKind.CONDITIONAL:
            mispredicted = self.predict(pc) != taken
            self.update(pc, taken)
            return mispredicted
        if kind is BranchKind.INDIRECT:
            mispredicted = self.predict_target(pc) != target
            self.update_target(pc, target)
            return mispredicted
        return False


class AlwaysTakenPredictor(BranchPredictor):
    """Static predict-taken; the pre-dynamic-prediction baseline."""

    name = "always-taken"
    year = 1981

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        return None

    def storage_bits(self) -> int:
        return 0


class BimodalPredictor(BranchPredictor):
    """Per-PC table of 2-bit saturating counters."""

    name = "bimodal"
    year = 1985

    def __init__(self, entries: int = 4096, counter_bits: int = 2) -> None:
        super().__init__()
        self._entries = entries
        self._counter_bits = counter_bits
        self._index_bits = ceil_log2(entries)
        self._counters: List[SignedSaturatingCounter] = [
            SignedSaturatingCounter(bits=counter_bits) for _ in range(entries)
        ]

    def _index(self, pc: int) -> int:
        return pc & mask(self._index_bits)

    def predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)].is_positive

    def update(self, pc: int, taken: bool) -> None:
        self._counters[self._index(pc)].update_towards(taken)

    def storage_bits(self) -> int:
        return self._entries * self._counter_bits


class TwoLevelLocalPredictor(BranchPredictor):
    """PAg two-level predictor: per-branch local history indexes a PHT."""

    name = "two-level-local"
    year = 1991

    def __init__(self, history_bits: int = 10, bht_entries: int = 1024) -> None:
        super().__init__()
        self._history_bits = history_bits
        self._bht_entries = bht_entries
        self._bht_index_bits = ceil_log2(bht_entries)
        self._local_history: List[int] = [0] * bht_entries
        self._pht: List[SignedSaturatingCounter] = [
            SignedSaturatingCounter(bits=2) for _ in range(1 << history_bits)
        ]

    def _bht_index(self, pc: int) -> int:
        return pc & mask(self._bht_index_bits)

    def predict(self, pc: int) -> bool:
        history = self._local_history[self._bht_index(pc)]
        return self._pht[history].is_positive

    def update(self, pc: int, taken: bool) -> None:
        bht_index = self._bht_index(pc)
        history = self._local_history[bht_index]
        self._pht[history].update_towards(taken)
        self._local_history[bht_index] = (
            (history << 1) | int(taken)
        ) & mask(self._history_bits)

    def storage_bits(self) -> int:
        return self._bht_entries * self._history_bits + len(self._pht) * 2


class GSharePredictor(BranchPredictor):
    """Global history XOR PC indexing a table of 2-bit counters."""

    name = "gshare"
    year = 1993

    def __init__(self, history_bits: int = 14) -> None:
        super().__init__()
        self._history_bits = history_bits
        self._history = 0
        self._counters: List[SignedSaturatingCounter] = [
            SignedSaturatingCounter(bits=2) for _ in range(1 << history_bits)
        ]

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) & mask(self._history_bits)

    def predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)].is_positive

    def update(self, pc: int, taken: bool) -> None:
        self._counters[self._index(pc)].update_towards(taken)
        self._history = ((self._history << 1) | int(taken)) & mask(self._history_bits)

    def storage_bits(self) -> int:
        return len(self._counters) * 2 + self._history_bits


class CombiningPredictor(BranchPredictor):
    """McFarling's tournament: bimodal and gshare arbitrated by a chooser."""

    name = "combining"
    year = 1993

    def __init__(self, history_bits: int = 13, bimodal_entries: int = 4096) -> None:
        super().__init__()
        self._bimodal = BimodalPredictor(entries=bimodal_entries)
        self._gshare = GSharePredictor(history_bits=history_bits)
        self._chooser: List[SignedSaturatingCounter] = [
            SignedSaturatingCounter(bits=2) for _ in range(bimodal_entries)
        ]
        self._chooser_index_bits = ceil_log2(bimodal_entries)

    def _chooser_index(self, pc: int) -> int:
        return pc & mask(self._chooser_index_bits)

    def predict(self, pc: int) -> bool:
        use_gshare = self._chooser[self._chooser_index(pc)].is_positive
        if use_gshare:
            return self._gshare.predict(pc)
        return self._bimodal.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        bimodal_correct = self._bimodal.predict(pc) == taken
        gshare_correct = self._gshare.predict(pc) == taken
        if bimodal_correct != gshare_correct:
            self._chooser[self._chooser_index(pc)].update_towards(gshare_correct)
        self._bimodal.update(pc, taken)
        self._gshare.update(pc, taken)

    def storage_bits(self) -> int:
        return (
            self._bimodal.storage_bits()
            + self._gshare.storage_bits()
            + len(self._chooser) * 2
        )


class PerceptronPredictor(BranchPredictor):
    """Jiménez & Lin's perceptron predictor over global history."""

    name = "perceptron"
    year = 2001

    def __init__(
        self,
        history_bits: int = 24,
        table_entries: int = 512,
        weight_bits: int = 8,
    ) -> None:
        super().__init__()
        self._history_bits = history_bits
        self._table_entries = table_entries
        self._weight_bits = weight_bits
        self._index_bits = ceil_log2(table_entries)
        # Threshold from the original paper: 1.93*h + 14.
        self._threshold = int(1.93 * history_bits + 14)
        self._weights: List[List[SignedSaturatingCounter]] = [
            [SignedSaturatingCounter(bits=weight_bits) for _ in range(history_bits + 1)]
            for _ in range(table_entries)
        ]
        self._history: List[int] = [1] * history_bits  # +1 / -1 encoding

    def _index(self, pc: int) -> int:
        return pc & mask(self._index_bits)

    def _output(self, pc: int) -> int:
        weights = self._weights[self._index(pc)]
        output = weights[0].value  # bias
        for weight, direction in zip(weights[1:], self._history):
            output += weight.value * direction
        return output

    def predict(self, pc: int) -> bool:
        return self._output(pc) >= 0

    def update(self, pc: int, taken: bool) -> None:
        output = self._output(pc)
        predicted = output >= 0
        direction = 1 if taken else -1
        if predicted != taken or abs(output) <= self._threshold:
            weights = self._weights[self._index(pc)]
            weights[0].increment() if taken else weights[0].decrement()
            for weight, hist_dir in zip(weights[1:], self._history):
                if hist_dir == direction:
                    weight.increment()
                else:
                    weight.decrement()
        self._history.pop(0)
        self._history.append(direction)

    def storage_bits(self) -> int:
        return (
            self._table_entries * (self._history_bits + 1) * self._weight_bits
            + self._history_bits
        )
