"""Global branch history with per-micro-op snapshots.

The paper's predictor needs, for a load decoded at some point in the stream,
"the last L divergent branches before the load" where L is discovered per
conflict (N+1 with N the divergent-branch distance store->load, Sec. IV-A2).
Because the simulator is trace driven and squash replay revisits micro-ops,
the cleanest faithful model is an *append-only log* of branch records plus an
integer snapshot per micro-op; any window of any length can then be
reconstructed exactly. The hardware equivalent is the global history register
pair (decode/commit) described in Sec. IV-A2; the log is simply its
unbounded-precision software form.

Each divergent-branch record carries what the hardware tracks per entry: a
type bit (conditional/indirect), a taken bit, and a few low bits of the
destination actually taken (5 in the paper's configuration).
"""

from __future__ import annotations

import bisect
import zlib
from array import array
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.common.bitops import mask
from repro.isa.microop import BranchInfo, BranchKind


@dataclass(frozen=True)
class BranchRecord:
    """One retired branch in the global history log."""

    pc: int
    kind: BranchKind
    taken: bool
    target: int  # destination actually followed (fall-through if not taken)

    @property
    def is_divergent(self) -> bool:
        return self.kind.is_divergent

    def encode(self, target_bits: int) -> int:
        """Pack the record the way PHAST's history register stores it.

        Layout (low to high): ``target_bits`` bits of the destination, the
        taken bit, the type bit (1 = indirect). Conditional entries contribute
        their outcome *and* destination bits, which is what lets PHAST include
        "the address where the divergent branch previous to the store jumps"
        even for conditionals (Sec. III-B).
        """
        encoded = self.target & mask(target_bits)
        encoded |= int(self.taken) << target_bits
        encoded |= int(self.kind is BranchKind.INDIRECT) << (target_bits + 1)
        return encoded


#: Fixed pickling codes for :class:`BranchKind` (order is part of the
#: checkpoint payload format — append only, never reorder).
_KIND_BY_CODE = (
    BranchKind.CONDITIONAL,
    BranchKind.INDIRECT,
    BranchKind.UNCONDITIONAL,
    BranchKind.CALL,
    BranchKind.RETURN,
)
_CODE_BY_KIND = {kind: code for code, kind in enumerate(_KIND_BY_CODE)}


class HistoryView:
    """A filtered, index-searchable view over the master history log.

    Predictors differ in *which* branches they observe: PHAST sees divergent
    branches (conditional + indirect); the NoSQ predictor sees conditional
    branches and calls. A view keeps the master-log positions of its records
    so that a snapshot taken on the master log can be translated into "the
    last L records of this view".
    """

    __slots__ = ("_records", "_positions")

    def __init__(self) -> None:
        self._records: List[BranchRecord] = []
        self._positions: List[int] = []  # master-log index of each record

    def __getstate__(self):
        # The log grows with the trace (hundreds of thousands of records at
        # checkpoint scale); pickling one dataclass per record dominates
        # machine-state checkpoint encoding. Packing into primitive arrays
        # makes a 1M-op checkpoint ~6x faster to pickle and much smaller.
        records = self._records
        return {
            "pcs": array("Q", [record.pc for record in records]),
            "meta": array(
                "B",
                [
                    _CODE_BY_KIND[record.kind] | (record.taken << 3)
                    for record in records
                ],
            ),
            "targets": array("Q", [record.target for record in records]),
            "positions": array("Q", self._positions),
        }

    def __setstate__(self, state) -> None:
        kinds = _KIND_BY_CODE
        self._records = [
            BranchRecord(
                pc=pc, kind=kinds[meta & 7], taken=bool(meta >> 3), target=target
            )
            for pc, meta, target in zip(state["pcs"], state["meta"], state["targets"])
        ]
        self._positions = list(state["positions"])

    def append(self, record: BranchRecord, master_position: int) -> None:
        self._records.append(record)
        self._positions.append(master_position)

    def count_before(self, snapshot: int) -> int:
        """Number of view records whose master position precedes ``snapshot``."""
        return bisect.bisect_left(self._positions, snapshot)

    def positions(self) -> Tuple[int, ...]:
        """Master-log position of every view record, in record order.

        Batch-backend kernels use this to vectorize ``count_before`` over
        all snapshots of a trace in one ``searchsorted`` pass.
        """
        return tuple(self._positions)

    def window(self, snapshot: int, length: int) -> Tuple[BranchRecord, ...]:
        """The last ``length`` view records before ``snapshot``, oldest first.

        Returns fewer records when the program hasn't executed that many
        branches yet (cold start).
        """
        if length < 0:
            raise ValueError(f"length must be >= 0, got {length}")
        end = self.count_before(snapshot)
        start = max(0, end - length)
        return tuple(self._records[start:end])

    def records_in_master_range(
        self, older_snapshot: int, younger_snapshot: int
    ) -> Tuple[BranchRecord, ...]:
        """View records at master positions in ``[older, younger)``, oldest first.

        Used by predictors that maintain rolling folded histories to catch up
        with the log between queries.
        """
        start = self.count_before(older_snapshot)
        end = self.count_before(younger_snapshot)
        return tuple(self._records[start:end])

    def count_between(self, older_snapshot: int, younger_snapshot: int) -> int:
        """View records at master positions in ``[older_snapshot, younger_snapshot)``.

        This is exactly the paper's N: the number of divergent branches
        between a store (decoded at ``older_snapshot``) and a younger load
        (decoded at ``younger_snapshot``).
        """
        if younger_snapshot < older_snapshot:
            raise ValueError("younger snapshot precedes older snapshot")
        return self.count_before(younger_snapshot) - self.count_before(older_snapshot)

    def __len__(self) -> int:
        return len(self._records)


class GlobalHistory:
    """Master append-only branch log with PHAST and NoSQ filtered views."""

    def __init__(self) -> None:
        self._master_count = 0
        self.divergent = HistoryView()  # conditional + indirect (PHAST)
        self.nosq = HistoryView()  # conditional + call (NoSQ predictor)

    def snapshot(self) -> int:
        """Current log position; store one per decoded micro-op."""
        return self._master_count

    def record(self, pc: int, info: BranchInfo) -> BranchRecord:
        """Append a retired branch to the log and all matching views."""
        record = BranchRecord(pc=pc, kind=info.kind, taken=info.taken, target=info.target)
        position = self._master_count
        self._master_count += 1
        if record.is_divergent:
            self.divergent.append(record, position)
        if record.kind in (BranchKind.CONDITIONAL, BranchKind.CALL):
            self.nosq.append(record, position)
        return record

    def divergent_count_at(self, snapshot: int) -> int:
        """Divergent branches decoded before ``snapshot`` (the paper's global
        decode-time counter used to derive history lengths on conflicts)."""
        return self.divergent.count_before(snapshot)

    def checkpoint_digest(self) -> int:
        """Cheap semantic digest of the log (checkpoint restore self-check).

        Covers the master position, both view populations and the most
        recent divergent record — catching a restore that dropped records or
        desynchronised a filtered view without hashing the whole log.
        """
        last = 0
        records = self.divergent._records
        if records:
            tail = records[-1]
            last = tail.encode(target_bits=16) ^ (tail.pc & 0xFFFF)
        blob = f"{self._master_count}:{len(self.divergent)}:{len(self.nosq)}:{last}"
        return zlib.crc32(blob.encode("ascii"))


def encode_window(
    records: Sequence[BranchRecord], target_bits: int
) -> Tuple[int, ...]:
    """Encode a window of records into fixed-width integers, oldest first."""
    return tuple(record.encode(target_bits) for record in records)
