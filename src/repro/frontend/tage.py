"""TAGE branch predictor (Seznec), used as the pipeline front end.

The paper's core uses TAGE-SC-L; this is a faithful plain TAGE — a bimodal
base predictor plus tagged components indexed with geometrically increasing
folded global history. The statistical corrector and loop predictor of
TAGE-SC-L buy a few percent of accuracy that does not change any MDP
conclusion, so they are omitted (documented fidelity note in DESIGN.md).

The implementation also doubles as the structural template the paper reuses
for prediction tables searched in parallel at several history lengths
(Sec. IV-B: "Tables are searched in parallel on each prediction, similar to
the structure of a TAGE branch prediction").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.bitops import mask
from repro.common.counters import SignedSaturatingCounter
from repro.common.rng import DeterministicRNG
from repro.frontend.branch_predictors import BranchPredictor
from repro.isa.microop import BranchKind


def geometric_history_lengths(minimum: int, maximum: int, count: int) -> List[int]:
    """The classic TAGE geometric series of history lengths.

    ``L(i) = round(minimum * (maximum/minimum)^(i/(count-1)))``, deduplicated
    and strictly increasing.
    """
    if count < 2:
        raise ValueError("need at least two components")
    if minimum <= 0 or maximum <= minimum:
        raise ValueError("require 0 < minimum < maximum")
    lengths: List[int] = []
    ratio = (maximum / minimum) ** (1.0 / (count - 1))
    value = float(minimum)
    for _ in range(count):
        length = int(round(value))
        if lengths and length <= lengths[-1]:
            length = lengths[-1] + 1
        lengths.append(length)
        value *= ratio
    return lengths


class FoldedHistory:
    """Circularly folded global history, as in hardware TAGE.

    Maintains ``fold(history[0:length], width)`` incrementally as outcomes are
    shifted in, in O(1) per update.
    """

    __slots__ = ("length", "width", "value", "_out_pos", "_mask")

    def __init__(self, length: int, width: int) -> None:
        if length <= 0 or width <= 0:
            raise ValueError("length and width must be positive")
        self.length = length
        self.width = width
        self.value = 0
        self._out_pos = length % width
        self._mask = mask(width)

    def update(self, new_bit: int, outgoing_bit: int) -> None:
        """Shift ``new_bit`` in and ``outgoing_bit`` (history[length-1]) out.

        The shifted-in value is masked to ``width`` bits *before* the outgoing
        bit is XORed back at ``length % width`` — the XOR cannot leave the
        masked range, so a single mask suffices.
        """
        self.value = (((self.value << 1) | (new_bit & 1)) & self._mask) ^ (
            (outgoing_bit & 1) << self._out_pos
        )


@dataclass
class TageEntry:
    tag: int = 0
    counter: SignedSaturatingCounter = field(
        default_factory=lambda: SignedSaturatingCounter(bits=3)
    )
    useful: int = 0
    valid: bool = False


class TAGEPredictor(BranchPredictor):
    """Plain TAGE with ``num_tables`` tagged components."""

    name = "tage"
    year = 2006

    def __init__(
        self,
        num_tables: int = 8,
        min_history: int = 4,
        max_history: int = 640,
        table_index_bits: int = 10,
        tag_bits: int = 11,
        useful_bits: int = 2,
        reset_period: int = 256 * 1024,
        seed: int = 0x7A6E,
    ) -> None:
        super().__init__()
        self._lengths = geometric_history_lengths(min_history, max_history, num_tables)
        self._index_bits = table_index_bits
        self._tag_bits = tag_bits
        self._index_mask = mask(table_index_bits)
        self._tag_mask = mask(tag_bits)
        self._useful_max = (1 << useful_bits) - 1
        self._useful_bits = useful_bits
        self._reset_period = reset_period
        self._rng = DeterministicRNG(seed)

        self._bimodal: List[SignedSaturatingCounter] = [
            SignedSaturatingCounter(bits=2) for _ in range(1 << 12)
        ]
        self._tables: List[List[TageEntry]] = [
            [TageEntry() for _ in range(1 << table_index_bits)]
            for _ in self._lengths
        ]
        # Global history as a fixed circular buffer: ``_history[(head + i) %
        # len]`` is history bit ``i`` (0 = youngest). A plain list with
        # ``insert(0)`` costs O(max_history) per branch; the cursor is O(1).
        self._hist_size = max(self._lengths) + 1
        self._history: List[int] = [0] * self._hist_size
        self._hist_head = 0
        self._folded_index = [
            FoldedHistory(length, table_index_bits) for length in self._lengths
        ]
        self._folded_tag0 = [FoldedHistory(length, tag_bits) for length in self._lengths]
        self._folded_tag1 = [
            FoldedHistory(length, tag_bits - 1) for length in self._lengths
        ]
        self._branch_count = 0
        # Alternate-prediction preference counter (USE_ALT_ON_NA).
        self._use_alt = SignedSaturatingCounter(bits=4)

    # -- indexing -----------------------------------------------------------

    def _bimodal_index(self, pc: int) -> int:
        return pc & mask(12)

    def _table_index(self, pc: int, table: int) -> int:
        return (
            pc ^ (pc >> (self._index_bits - table)) ^ self._folded_index[table].value
        ) & self._index_mask

    def _table_tag(self, pc: int, table: int) -> int:
        return (
            pc ^ self._folded_tag0[table].value ^ (self._folded_tag1[table].value << 1)
        ) & self._tag_mask

    def _lookup(self, pc: int) -> Tuple[Optional[int], Optional[int]]:
        """Return (provider_table, alternate_table), longest-history match first."""
        provider = alternate = None
        for table in range(len(self._lengths) - 1, -1, -1):
            entry = self._tables[table][self._table_index(pc, table)]
            if entry.valid and entry.tag == self._table_tag(pc, table):
                if provider is None:
                    provider = table
                else:
                    alternate = table
                    break
        return provider, alternate

    def _table_prediction(self, pc: int, table: int) -> bool:
        return self._tables[table][self._table_index(pc, table)].counter.is_positive

    def _bimodal_prediction(self, pc: int) -> bool:
        return self._bimodal[self._bimodal_index(pc)].is_positive

    # -- BranchPredictor interface -------------------------------------------

    def _final_prediction(
        self, pc: int, provider: Optional[int], alternate: Optional[int]
    ) -> bool:
        """The TAGE prediction given an already-computed :meth:`_lookup`."""
        if provider is None:
            return self._bimodal_prediction(pc)
        entry = self._tables[provider][self._table_index(pc, provider)]
        newly_allocated = abs(entry.counter.value * 2 + 1) == 1 and entry.useful == 0
        if newly_allocated and self._use_alt.is_positive:
            if alternate is not None:
                return self._table_prediction(pc, alternate)
            return self._bimodal_prediction(pc)
        return entry.counter.is_positive

    def predict(self, pc: int) -> bool:
        provider, alternate = self._lookup(pc)
        return self._final_prediction(pc, provider, alternate)

    def _train(
        self,
        pc: int,
        taken: bool,
        provider: Optional[int],
        alternate: Optional[int],
        final_prediction: bool,
    ) -> None:
        """The update sequence given an already-computed lookup + prediction."""
        if provider is not None:
            entry = self._tables[provider][self._table_index(pc, provider)]
            provider_prediction = entry.counter.is_positive
            if alternate is not None:
                alt_prediction = self._table_prediction(pc, alternate)
            else:
                alt_prediction = self._bimodal_prediction(pc)
            # Track whether alternate would have been better for weak entries.
            newly_allocated = abs(entry.counter.value * 2 + 1) == 1 and entry.useful == 0
            if newly_allocated and provider_prediction != alt_prediction:
                self._use_alt.update_towards(alt_prediction == taken)
            # Usefulness: provider correct where the alternate was wrong.
            if provider_prediction != alt_prediction:
                if provider_prediction == taken:
                    entry.useful = min(self._useful_max, entry.useful + 1)
                else:
                    entry.useful = max(0, entry.useful - 1)
            entry.counter.update_towards(taken)
        else:
            self._bimodal[self._bimodal_index(pc)].update_towards(taken)

        # Allocate on misprediction in a longer-history table.
        if final_prediction != taken:
            start = (provider + 1) if provider is not None else 0
            self._allocate(pc, taken, start)

        self._shift_history(pc, taken)
        self._branch_count += 1
        if self._branch_count % self._reset_period == 0:
            self._reset_useful()

    def update(self, pc: int, taken: bool) -> None:
        provider, alternate = self._lookup(pc)
        final_prediction = self._final_prediction(pc, provider, alternate)
        self._train(pc, taken, provider, alternate, final_prediction)

    def observe(self, pc: int, kind, taken: bool, target: int) -> bool:
        """Predict-then-train with the table search shared between the two.

        The base-class ``observe`` calls ``predict`` then ``update``, which
        re-runs the tagged-table search (and ``update`` historically re-ran it
        a third time for its own ``predict``). Nothing mutates between the
        two phases, so one :meth:`_lookup` serves both — bit-identical, one
        search per conditional branch instead of three.
        """
        if kind is BranchKind.CONDITIONAL:
            provider, alternate = self._lookup(pc)
            final_prediction = self._final_prediction(pc, provider, alternate)
            self._train(pc, taken, provider, alternate, final_prediction)
            return final_prediction != taken
        return super().observe(pc, kind, taken, target)

    # -- internals -----------------------------------------------------------

    def _allocate(self, pc: int, taken: bool, start_table: int) -> None:
        candidates = [
            table
            for table in range(start_table, len(self._lengths))
            if self._tables[table][self._table_index(pc, table)].useful == 0
        ]
        if not candidates:
            # Decay usefulness so future allocations can succeed.
            for table in range(start_table, len(self._lengths)):
                entry = self._tables[table][self._table_index(pc, table)]
                entry.useful = max(0, entry.useful - 1)
            return
        # Prefer the shortest candidate, with a 1/2 chance of skipping to the
        # next (Seznec's anti-ping-pong allocation randomisation).
        chosen = candidates[0]
        if len(candidates) > 1 and self._rng.one_in(2):
            chosen = candidates[1]
        entry = self._tables[chosen][self._table_index(pc, chosen)]
        entry.valid = True
        entry.tag = self._table_tag(pc, chosen)
        entry.counter = SignedSaturatingCounter(bits=3, value=0 if taken else -1)
        entry.useful = 0

    def _shift_history(self, pc: int, taken: bool) -> None:
        new_bit = int(taken) ^ (pc & 1)
        history = self._history
        head = self._hist_head
        size = self._hist_size
        folded_index = self._folded_index
        folded_tag0 = self._folded_tag0
        folded_tag1 = self._folded_tag1
        for table, length in enumerate(self._lengths):
            outgoing = history[(head + length - 1) % size]
            folded_index[table].update(new_bit, outgoing)
            folded_tag0[table].update(new_bit, outgoing)
            folded_tag1[table].update(new_bit, outgoing)
        head = (head - 1) % size
        history[head] = new_bit
        self._hist_head = head

    def _reset_useful(self) -> None:
        for table_entries in self._tables:
            for entry in table_entries:
                entry.useful = 0

    def storage_bits(self) -> int:
        tagged = len(self._lengths) * (1 << self._index_bits) * (
            self._tag_bits + 3 + self._useful_bits
        )
        return tagged + len(self._bimodal) * 2 + max(self._lengths)
