"""Front-end models: global branch history and branch predictors.

The history machinery is central to the paper: PHAST trains with the global
history of *divergent* branches (conditional and indirect) between a
conflicting store and its dependent load, plus one extra entry — the branch
preceding the store (Sec. III-B). The NoSQ predictor instead hashes a fixed
8-entry history of conditional-branch outcomes and call-site PC bits.

The branch predictors implemented here serve two purposes: TAGE drives the
pipeline's front end (the paper uses TAGE-SC-L), and the historical roster
(always-taken through perceptron) regenerates Figure 1's 30-year MPKI sweep.
"""

from repro.frontend.history import BranchRecord, GlobalHistory, HistoryView
from repro.frontend.branch_predictors import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    BranchPredictor,
    CombiningPredictor,
    GSharePredictor,
    PerceptronPredictor,
    TwoLevelLocalPredictor,
)
from repro.frontend.tage import TAGEPredictor

__all__ = [
    "BranchRecord",
    "GlobalHistory",
    "HistoryView",
    "BranchPredictor",
    "AlwaysTakenPredictor",
    "BimodalPredictor",
    "TwoLevelLocalPredictor",
    "GSharePredictor",
    "CombiningPredictor",
    "PerceptronPredictor",
    "TAGEPredictor",
]
