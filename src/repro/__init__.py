"""repro — reproduction of "Effective Context-Sensitive Memory Dependence
Prediction" (PHAST, Kim & Ros, HPCA 2024).

Public API tour (the supported surface is re-exported by :mod:`repro.api`):

>>> from repro.api import RunSpec, simulate
>>> result = simulate(RunSpec("511.povray", "phast"))
>>> result.ipc > 0
True

* :func:`repro.simulate` — run one :class:`~repro.sim.spec.RunSpec`.
* :class:`repro.api.SweepClient` — submit specs/grids to a ``repro serve``
  instance over the versioned v1 wire API.
* :mod:`repro.mdp` — PHAST, Store Sets, Store Vectors, CHT, NoSQ, MDP-TAGE,
  the unlimited study predictors and the ideal/blind oracles.
* :mod:`repro.workloads` — the synthetic SPEC CPU 2017-like suite.
* :mod:`repro.core` — the out-of-order pipeline timing model (Table I).
* :mod:`repro.sim` — experiment grids for regenerating the paper's figures.

See DESIGN.md for the system inventory and EXPERIMENTS.md for paper-versus-
measured results on every table and figure.
"""

from repro.core.config import GENERATIONS, CoreConfig
from repro.mdp import (
    CHTPredictor,
    IdealPredictor,
    MDPredictor,
    MDPTagePredictor,
    NoSQPredictor,
    PHASTPredictor,
    StoreSetsPredictor,
    StoreVectorPredictor,
    UnlimitedMDPTagePredictor,
    UnlimitedNoSQPredictor,
    UnlimitedPHASTPredictor,
)
from repro.sim.experiment import ExperimentGrid, normalize_to_ideal
from repro.sim.metrics import SimResult
from repro.sim.simulator import (
    PREDICTOR_FACTORIES,
    available_predictors,
    make_predictor,
    register_predictor,
    run_spec,
    simulate,
    unregister_predictor,
)
from repro.sim.spec import RunSpec
from repro.workloads.spec2017 import SPEC_PROFILES, spec_suite, workload

__version__ = "1.0.0"

__all__ = [
    "simulate",
    "run_spec",
    "RunSpec",
    "make_predictor",
    "register_predictor",
    "unregister_predictor",
    "available_predictors",
    "PREDICTOR_FACTORIES",
    "SimResult",
    "ExperimentGrid",
    "normalize_to_ideal",
    "CoreConfig",
    "GENERATIONS",
    "MDPredictor",
    "PHASTPredictor",
    "StoreSetsPredictor",
    "StoreVectorPredictor",
    "CHTPredictor",
    "NoSQPredictor",
    "MDPTagePredictor",
    "IdealPredictor",
    "UnlimitedPHASTPredictor",
    "UnlimitedNoSQPredictor",
    "UnlimitedMDPTagePredictor",
    "SPEC_PROFILES",
    "spec_suite",
    "workload",
    "__version__",
]
