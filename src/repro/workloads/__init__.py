"""Synthetic workload generation.

SPEC CPU 2017 traces are not redistributable, so this package rebuilds the
*memory-dependence character* of the suite from parameterised "motifs" — code
fragments that produce specific predictor-relevant patterns (path-dependent
conflicts, stable conflicts, data-dependent occasional conflicts, multi-store
writes, late-resolving store addresses, branchy filler). Each of the paper's
applications is approximated by a :class:`~repro.workloads.generator.WorkloadProfile`
mixing those motifs with parameters chosen from the paper's per-application
observations (Sec. VI). DESIGN.md §1 documents this substitution.
"""

from repro.workloads.layout import AddressRegion, LayoutContext, PCAllocator, RegisterAllocator
from repro.workloads.generator import WorkloadProfile, build_trace
from repro.workloads.spec2017 import SPEC_PROFILES, spec_suite, workload

__all__ = [
    "AddressRegion",
    "LayoutContext",
    "PCAllocator",
    "RegisterAllocator",
    "WorkloadProfile",
    "build_trace",
    "SPEC_PROFILES",
    "spec_suite",
    "workload",
]
