"""Dependence motifs: parameterised code fragments with known MDP behaviour.

Each motif allocates a static layout once (PCs, registers, data regions) and
then emits *dynamic activations* over it, exactly like iterations of a real
loop body. The motifs map one-to-one onto the phenomena the paper studies:

* :class:`ComputeFiller` — ALU/FP/branch/load filler; its optional
  unpredictable divergent branches are the "history noise" that pollutes
  predictors trained with longer-than-necessary histories (Sec. III-B).
* :class:`StableConflict` — a store with a late-resolving address followed at
  a fixed store distance by a dependent load; path-independent (the easy case
  every predictor must get right).
* :class:`PathDependentConflict` — a divergent branch selects which store
  (and at which distance) the load depends on; reproduces Fig. 5 and the
  511.povray indirect-branch example (Sec. III-C).
* :class:`DataDependentConflict` — store and load addresses collide only
  sometimes, with identical history either way; the 541.leela/510.parest
  behaviour that no path-based predictor can capture (Sec. VI-A).
* :class:`MultiStoreConflict` — several narrow in-order stores feeding one
  wide load (503.bwaves / 525.x264, Fig. 4).
* :class:`StoreSetStress` — several in-flight instances of the same static
  store with iteration-local dependences; Store Sets serialises the instances
  (the 500.perlbench_3 weakness, Sec. VI-C).
* :class:`CallHeavyConflict` — a stable conflict reached through call/return
  pairs, exercising the NoSQ predictor's call-PC history bits.

The conflicting stores' addresses resolve late (their address registers hang
off a cache-missing "setup" load), so a speculating load genuinely overtakes
them — the situation that makes memory dependence prediction necessary.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

from repro.common.rng import DeterministicRNG
from repro.isa.microop import BranchInfo, BranchKind, MemInfo, MicroOp, OpKind
from repro.workloads.layout import LayoutContext


# --------------------------------------------------------------------------- #
# Micro-op builders
# --------------------------------------------------------------------------- #


def alu(pc: int, dst: Optional[int], srcs: Sequence[int] = ()) -> MicroOp:
    return MicroOp(pc=pc, kind=OpKind.ALU, dst_reg=dst, src_regs=tuple(srcs))


def fp_op(pc: int, dst: Optional[int], srcs: Sequence[int] = ()) -> MicroOp:
    return MicroOp(pc=pc, kind=OpKind.FP, dst_reg=dst, src_regs=tuple(srcs))


def load(
    pc: int, address: int, size: int, dst: Optional[int], srcs: Sequence[int] = ()
) -> MicroOp:
    return MicroOp(
        pc=pc,
        kind=OpKind.LOAD,
        dst_reg=dst,
        src_regs=tuple(srcs),
        mem=MemInfo(address=address, size=size),
    )


def store(
    pc: int,
    address: int,
    size: int,
    addr_srcs: Sequence[int] = (),
    data_srcs: Sequence[int] = (),
) -> MicroOp:
    return MicroOp(
        pc=pc,
        kind=OpKind.STORE,
        src_regs=tuple(addr_srcs),
        store_data_regs=tuple(data_srcs),
        mem=MemInfo(address=address, size=size),
    )


def cond_branch(pc: int, taken: bool, taken_target: int) -> MicroOp:
    target = taken_target if taken else pc + 4
    return MicroOp(
        pc=pc,
        kind=OpKind.BRANCH,
        branch=BranchInfo(kind=BranchKind.CONDITIONAL, taken=taken, target=target),
    )


def indirect_branch(pc: int, target: int) -> MicroOp:
    return MicroOp(
        pc=pc,
        kind=OpKind.BRANCH,
        branch=BranchInfo(kind=BranchKind.INDIRECT, taken=True, target=target),
    )


def call_branch(pc: int, target: int) -> MicroOp:
    return MicroOp(
        pc=pc,
        kind=OpKind.BRANCH,
        branch=BranchInfo(kind=BranchKind.CALL, taken=True, target=target),
    )


def return_branch(pc: int, target: int) -> MicroOp:
    return MicroOp(
        pc=pc,
        kind=OpKind.BRANCH,
        branch=BranchInfo(kind=BranchKind.RETURN, taken=True, target=target),
    )


# --------------------------------------------------------------------------- #
# Motif base
# --------------------------------------------------------------------------- #


class Motif(abc.ABC):
    """A static code fragment emitting dynamic activations."""

    def __init__(self, layout: LayoutContext) -> None:
        self._activations = 0

    @abc.abstractmethod
    def activate(self, rng: DeterministicRNG) -> List[MicroOp]:
        """Emit one dynamic instance of this motif."""

    def _next_activation(self) -> int:
        self._activations += 1
        return self._activations - 1

    def _loop_reg(self) -> int:
        """Loop-carried dependence source for the next activation's chain.

        Conflict motifs feed their consumer chain's final register into the
        next activation's address computation, the way real loop bodies feed
        loaded values into the next iteration's decisions. This is what makes
        a stalled conflict load *cost* cycles: without it, load delays hide
        in the commit shadow of the address-generating miss.
        """
        consumers = getattr(self, "_consumers", None)
        if consumers is not None:
            return consumers.final_reg
        return 0


class _ConsumerChain:
    """Dependent work fed by a conflict load's result.

    The loaded value is treated as a pointer: an ALU massages it and a second
    load dereferences it (into a small, cache-resident region so only the
    *dependence* costs cycles, not extra misses). This is what makes load
    delays — squashes and false dependences alike — propagate, as they do on
    real critical paths.
    """

    def __init__(self, layout: LayoutContext) -> None:
        self.alu_pc = layout.pcs.fresh()
        self.deref_pc = layout.pcs.fresh()
        self.final_pc = layout.pcs.fresh()
        self.region = layout.memory.region(4096)
        self.mid_reg = layout.regs.fresh()
        self.deref_reg = layout.regs.fresh()
        self.final_reg = layout.regs.fresh()
        self._cursor = 0

    def emit(self, value_reg: int) -> List[MicroOp]:
        self._cursor = (self._cursor + 8) % (self.region.size - 8)
        return [
            alu(self.alu_pc, self.mid_reg, (value_reg,)),
            load(self.deref_pc, self.region.base + self._cursor, 8,
                 self.deref_reg, (self.mid_reg,)),
            alu(self.final_pc, self.final_reg, (self.deref_reg,)),
        ]


class _LateAddressChain:
    """Shared helper: a load + ALU chain producing a late-ready address register.

    The chain's load mixes hot reuse with cold excursions into a
    ``footprint``-byte region. Larger footprints yield a higher cold-miss
    fraction (uniform sampling of a large region is essentially always cold
    within a trace, so the mix — not the raw region size — is what controls
    the *average* address-resolution delay of the downstream store, i.e. how
    far loads can overtake it):

    * <= 16 KiB  -> ~5%  cold accesses (mostly L1-resident pointer data)
    * <= 256 KiB -> ~20% (L2-class working set)
    * <= 2 MiB   -> ~40% (L3-class)
    * <= 8 MiB   -> ~65%
    * larger     -> ~85% (DRAM-bound pointer chasing)
    """

    _MISS_LADDER = (
        (16 * 1024, 0.05),
        (256 * 1024, 0.20),
        (2 * 1024 * 1024, 0.40),
        (8 * 1024 * 1024, 0.65),
    )

    def __init__(self, layout: LayoutContext, footprint: int) -> None:
        self.load_pc = layout.pcs.fresh()
        self.alu_pc = layout.pcs.fresh()
        self.region = layout.memory.region(footprint)
        self.temp_reg = layout.regs.fresh()
        self.addr_reg = layout.regs.fresh()
        self.miss_rate = 0.85
        for limit, rate in self._MISS_LADDER:
            if footprint <= limit:
                self.miss_rate = rate
                break
        self._hot_line: Optional[int] = None

    def emit(self, rng: DeterministicRNG, ready_reg: int) -> List[MicroOp]:
        lines = max(1, self.region.size // 64)
        if self._hot_line is None or rng.chance(self.miss_rate):
            self._hot_line = rng.randint(0, lines - 1)
        address = self.region.base + self._hot_line * 64
        return [
            load(self.load_pc, address, 8, self.temp_reg, (ready_reg,)),
            alu(self.alu_pc, self.addr_reg, (self.temp_reg,)),
        ]


# --------------------------------------------------------------------------- #
# Filler
# --------------------------------------------------------------------------- #


class ComputeFiller(Motif):
    """ALU/FP/branch/load filler between conflicts.

    ``random_branch_prob`` controls how many of its conditional branches are
    unpredictable coin flips; these divergent branches are the history noise
    that separates PHAST's exact-length training from fixed-length schemes.
    """

    def __init__(
        self,
        layout: LayoutContext,
        block_ops: int = 8,
        random_branch_prob: float = 0.3,
        biased_taken_prob: float = 0.96,
        load_fraction: float = 0.25,
        footprint: int = 32 * 1024,
        fp_fraction: float = 0.1,
        noise_persistence: float = 0.8,
        access_pattern: str = "stride",
        pattern_period: int = 0,
    ) -> None:
        super().__init__(layout)
        if access_pattern not in ("stride", "random"):
            raise ValueError(f"unknown access pattern {access_pattern!r}")
        if pattern_period < 0:
            raise ValueError(f"pattern_period must be >= 0, got {pattern_period}")
        self._access_pattern = access_pattern
        self._block_ops = block_ops
        # A purely periodic branch (period derived from the instance's layout
        # so replicas differ): mispredicted 1/period of the time by counters,
        # perfectly learnable by pattern/history predictors — the structure
        # that separates the branch-predictor eras in Fig. 1.
        self._pattern_period = pattern_period
        self._pattern_pc = layout.pcs.fresh()
        self._pattern_target = layout.pcs.fresh()
        if pattern_period == 0:
            self._pattern_period = 3 + (self._pattern_pc >> 2) % 5
        # Per-instance bias direction: some loop branches are mostly taken,
        # others mostly not — static predict-taken gets half of them wrong,
        # which is precisely what 2-bit counters fixed in the 1980s.
        self._bias_direction = (self._pattern_pc >> 3) % 2 == 0
        # Flips of the bias branch come in streaks (a Markov chain whose
        # stationary flip rate is 1 - biased_taken_prob): real rare-direction
        # episodes cluster, keeping global-history contexts mostly clean —
        # i.i.d. flips would corrupt a fraction of every history window and
        # cripple gshare/TAGE-era predictors unrealistically.
        self._bias_flipped = False
        exit_prob = 0.5
        flip_rate = max(1e-6, 1.0 - biased_taken_prob)
        self._bias_enter_prob = min(1.0, exit_prob * flip_rate / max(1e-6, 1.0 - flip_rate))
        self._bias_exit_prob = exit_prob
        self._random_branch_prob = random_branch_prob
        self._biased_taken_prob = biased_taken_prob
        self._load_fraction = load_fraction
        self._fp_fraction = fp_fraction
        # Noise outcomes are phase-persistent rather than white: real
        # hard-to-predict branches still run in streaks.
        self._noise_persistence = noise_persistence
        self._last_noise = False
        self._region = layout.memory.region(footprint)
        self._regs = layout.regs.fresh_block(3)
        self._ready = layout.regs.ready_reg
        self._alu_pcs = layout.pcs.fresh_block(block_ops)
        self._load_pcs = layout.pcs.fresh_block(4)
        self._fp_pcs = layout.pcs.fresh_block(2)
        self._branch_pc = layout.pcs.fresh()
        self._branch_target = layout.pcs.fresh()
        self._random_branch_pc = layout.pcs.fresh()
        self._random_branch_target = layout.pcs.fresh()
        self._cursor = 0

    def activate(self, rng: DeterministicRNG) -> List[MicroOp]:
        ops: List[MicroOp] = []
        reg_cycle = 0
        for index in range(self._block_ops):
            draw = rng.random()
            if draw < self._load_fraction:
                if self._access_pattern == "random":
                    # Pointer-chasing style: uniform within the footprint.
                    slots = max(1, self._region.size // 8)
                    self._cursor = rng.randint(0, slots - 1) * 8
                else:
                    # Streaming: sequential walk, friendly to the prefetcher.
                    self._cursor = (self._cursor + 8) % max(8, self._region.size - 8)
                ops.append(
                    load(
                        self._load_pcs[index % len(self._load_pcs)],
                        self._region.base + self._cursor,
                        8,
                        self._regs[reg_cycle % len(self._regs)],
                        (self._ready,),
                    )
                )
            elif draw < self._load_fraction + self._fp_fraction:
                ops.append(
                    fp_op(
                        self._fp_pcs[index % len(self._fp_pcs)],
                        self._regs[reg_cycle % len(self._regs)],
                        (self._regs[(reg_cycle + 1) % len(self._regs)],),
                    )
                )
            else:
                ops.append(
                    alu(
                        self._alu_pcs[index],
                        self._regs[reg_cycle % len(self._regs)],
                        (self._ready,),
                    )
                )
            reg_cycle += 1
        # One biased, well-predictable loop-style branch per block...
        if self._bias_flipped:
            if rng.chance(self._bias_exit_prob):
                self._bias_flipped = False
        elif rng.chance(self._bias_enter_prob):
            self._bias_flipped = True
        ops.append(
            cond_branch(
                self._branch_pc,
                self._bias_direction != self._bias_flipped,
                self._branch_target,
            )
        )
        # ...one periodic pattern branch (like a fixed-trip inner loop)...
        activation = self._next_activation()
        ops.append(
            cond_branch(
                self._pattern_pc,
                activation % self._pattern_period != 0,
                self._pattern_target,
            )
        )
        # ...and optionally an unpredictable divergent branch (history noise).
        if rng.chance(self._random_branch_prob):
            if not rng.chance(self._noise_persistence):
                self._last_noise = rng.chance(0.5)
            ops.append(
                cond_branch(
                    self._random_branch_pc, self._last_noise, self._random_branch_target
                )
            )
        return ops


# --------------------------------------------------------------------------- #
# Conflict motifs
# --------------------------------------------------------------------------- #


class StableConflict(Motif):
    """Store -> (distance fillers) -> load, same path every time.

    The leading fixed-outcome conditional branch is the motif's loop-branch
    stand-in: it is the "divergent branch previous to the store" that PHAST's
    N+1 window captures, and it is stable, so the dependence maps to exactly
    one path.
    """

    def __init__(
        self,
        layout: LayoutContext,
        distance: int = 0,
        setup_footprint: int = 4 * 1024 * 1024,
        access_size: int = 8,
        address_slots: int = 4,
        inter_branches: int = 1,
    ) -> None:
        super().__init__(layout)
        if distance < 0:
            raise ValueError(f"distance must be >= 0, got {distance}")
        self._distance = distance
        self._size = access_size
        self._chain = _LateAddressChain(layout, setup_footprint)
        self._lead_branch_pc = layout.pcs.fresh()
        self._lead_target = layout.pcs.fresh()
        self._inter = inter_branches
        self._inter_pcs = layout.pcs.fresh_block(max(1, inter_branches))
        self._inter_targets = layout.pcs.fresh_block(max(1, inter_branches))
        self._store_pc = layout.pcs.fresh()
        self._filler_store_pcs = layout.pcs.fresh_block(max(1, distance))
        self._filler_region = layout.memory.region(4096)
        self._data_region = layout.memory.region(max(access_size * address_slots, 64))
        self._load_pc = layout.pcs.fresh()
        self._use_pc = layout.pcs.fresh()
        self._dst_reg = layout.regs.fresh()
        self._use_reg = layout.regs.fresh()
        self._consumers = _ConsumerChain(layout)
        self._ready = layout.regs.ready_reg
        self._slots = address_slots

    def activate(self, rng: DeterministicRNG) -> List[MicroOp]:
        index = self._next_activation()
        address = self._data_region.slot(index % self._slots, self._size)
        ops = self._chain.emit(rng, self._loop_reg())
        ops.append(cond_branch(self._lead_branch_pc, True, self._lead_target))
        ops.append(
            store(
                self._store_pc,
                address,
                self._size,
                addr_srcs=(self._chain.addr_reg,),
                data_srcs=(self._ready,),
            )
        )
        for filler in range(self._distance):
            ops.append(
                store(
                    self._filler_store_pcs[filler],
                    self._filler_region.slot(filler, 8),
                    8,
                    addr_srcs=(self._ready,),
                    data_srcs=(self._ready,),
                )
            )
        for branch in range(self._inter):
            ops.append(cond_branch(self._inter_pcs[branch], True, self._inter_targets[branch]))
        ops.append(load(self._load_pc, address, self._size, self._dst_reg, (self._ready,)))
        ops.extend(self._consumers.emit(self._dst_reg))
        return ops


class PathDependentConflict(Motif):
    """A divergent branch selects which store the load depends on (Fig. 5).

    Path ``p`` writes the load's address from store PC ``p`` and inserts
    ``distances[p]`` unrelated stores before the load, so the correct store
    distance depends on the path. ``inter_branches`` fixed-outcome divergent
    branches sit between the store and the load; the minimum disambiguating
    history is therefore ``inter_branches + 1`` — the extra entry being the
    path-selecting branch itself, whose *target* differs per path.

    With ``indirect=True`` the selector is an indirect branch with one target
    per path (the 511.povray pattern); otherwise a conditional branch selects
    between two paths.
    """

    def __init__(
        self,
        layout: LayoutContext,
        distances: Sequence[int] = (0, 1),
        inter_branches: int = 1,
        indirect: bool = False,
        setup_footprint: int = 4 * 1024 * 1024,
        access_size: int = 8,
        path_weights: Optional[Sequence[float]] = None,
        conflict_prob: float = 1.0,
        persistence: float = 0.6,
        herald_bits: int = 0,
    ) -> None:
        super().__init__(layout)
        if not indirect and len(distances) != 2:
            raise ValueError("a conditional selector supports exactly 2 paths")
        if indirect and not 2 <= len(distances) <= 8:
            raise ValueError("indirect selector supports 2..8 paths")
        if not 0.0 <= persistence < 1.0:
            raise ValueError(f"persistence must be in [0, 1), got {persistence}")
        self._distances = tuple(distances)
        self._inter = inter_branches
        self._indirect = indirect
        self._size = access_size
        self._weights = tuple(path_weights) if path_weights else (1.0,) * len(distances)
        self._conflict_prob = conflict_prob
        # Real control flow is phased: the same path tends to repeat for a
        # while before switching. Persistence is the probability of repeating
        # the previous activation's path; PC-only predictors then mispredict
        # only at switches, as they do on real codes.
        self._persistence = persistence
        self._last_path: Optional[int] = None
        # Herald branches: conditionals *before* the selector whose outcomes
        # encode low bits of the chosen path — real indirect dispatches are
        # usually preceded by correlated range/type checks. They give
        # conditional-history predictors (NoSQ) partial visibility into the
        # path without changing PHAST's required N+1 length (they are older
        # than the divergent branch previous to the store).
        self._herald_bits = herald_bits
        self._herald_pcs = layout.pcs.fresh_block(max(1, herald_bits))
        self._herald_targets = layout.pcs.fresh_block(max(1, herald_bits))

        self._chain = _LateAddressChain(layout, setup_footprint)
        self._selector_pc = layout.pcs.fresh()
        # Distinct targets must differ within the predictor's 5 target bits:
        # consecutive 4-byte PCs do (paths < 8).
        self._targets = layout.pcs.fresh_block(len(distances))
        self._store_pcs = layout.pcs.fresh_block(len(distances))
        max_distance = max(distances) if distances else 0
        self._filler_store_pcs = layout.pcs.fresh_block(max(1, max_distance))
        self._filler_region = layout.memory.region(4096)
        self._data_region = layout.memory.region(64)
        self._other_region = layout.memory.region(64)
        self._inter_pcs = layout.pcs.fresh_block(max(1, inter_branches))
        self._inter_targets = layout.pcs.fresh_block(max(1, inter_branches))
        self._load_pc = layout.pcs.fresh()
        self._use_pc = layout.pcs.fresh()
        self._dst_reg = layout.regs.fresh()
        self._use_reg = layout.regs.fresh()
        self._consumers = _ConsumerChain(layout)
        self._ready = layout.regs.ready_reg

    @property
    def required_history_length(self) -> int:
        """The paper's N+1 for this motif's dependences."""
        return self._inter + 1

    def activate(self, rng: DeterministicRNG) -> List[MicroOp]:
        if self._last_path is not None and rng.chance(self._persistence):
            path = self._last_path
        else:
            path = rng.weighted_choice(list(range(len(self._distances))), self._weights)
        self._last_path = path
        conflicts = rng.chance(self._conflict_prob)
        address = self._data_region.slot(0, self._size)
        store_address = address if conflicts else self._other_region.slot(0, self._size)

        ops = self._chain.emit(rng, self._loop_reg())
        for bit in range(self._herald_bits):
            ops.append(
                cond_branch(
                    self._herald_pcs[bit],
                    bool((path >> bit) & 1),
                    self._herald_targets[bit],
                )
            )
        if self._indirect:
            ops.append(indirect_branch(self._selector_pc, self._targets[path]))
        else:
            ops.append(cond_branch(self._selector_pc, path == 1, self._targets[1]))
        ops.append(
            store(
                self._store_pcs[path],
                store_address,
                self._size,
                addr_srcs=(self._chain.addr_reg,),
                data_srcs=(self._ready,),
            )
        )
        for filler in range(self._distances[path]):
            ops.append(
                store(
                    self._filler_store_pcs[filler],
                    self._filler_region.slot(filler, 8),
                    8,
                    addr_srcs=(self._ready,),
                    data_srcs=(self._ready,),
                )
            )
        for branch in range(self._inter):
            ops.append(cond_branch(self._inter_pcs[branch], True, self._inter_targets[branch]))
        ops.append(load(self._load_pc, address, self._size, self._dst_reg, (self._ready,)))
        ops.extend(self._consumers.emit(self._dst_reg))
        return ops


class DataDependentConflict(Motif):
    """Occasional conflicts with *identical* history either way.

    The store picks a random slot; the load reads slot 0. They collide with
    probability ``1/address_slots`` regardless of any branch outcome — the
    pattern the paper identifies in 541.leela and 510.parest where PHAST's
    false positives come from (Sec. VI-A).
    """

    def __init__(
        self,
        layout: LayoutContext,
        address_slots: int = 4,
        distance: int = 0,
        setup_footprint: int = 1024 * 1024,
        access_size: int = 8,
    ) -> None:
        super().__init__(layout)
        if address_slots < 2:
            raise ValueError("need at least 2 slots for occasional conflicts")
        self._slots = address_slots
        self._distance = distance
        self._size = access_size
        self._chain = _LateAddressChain(layout, setup_footprint)
        self._lead_branch_pc = layout.pcs.fresh()
        self._lead_target = layout.pcs.fresh()
        self._inter_pc = layout.pcs.fresh()
        self._inter_target = layout.pcs.fresh()
        self._store_pc = layout.pcs.fresh()
        self._filler_store_pcs = layout.pcs.fresh_block(max(1, distance))
        self._filler_region = layout.memory.region(4096)
        self._data_region = layout.memory.region(access_size * address_slots)
        self._load_pc = layout.pcs.fresh()
        self._use_pc = layout.pcs.fresh()
        self._dst_reg = layout.regs.fresh()
        self._use_reg = layout.regs.fresh()
        self._consumers = _ConsumerChain(layout)
        self._ready = layout.regs.ready_reg

    def activate(self, rng: DeterministicRNG) -> List[MicroOp]:
        store_slot = rng.randint(0, self._slots - 1)
        load_address = self._data_region.slot(0, self._size)
        store_address = self._data_region.slot(store_slot, self._size)
        ops = self._chain.emit(rng, self._loop_reg())
        ops.append(cond_branch(self._lead_branch_pc, True, self._lead_target))
        ops.append(
            store(
                self._store_pc,
                store_address,
                self._size,
                addr_srcs=(self._chain.addr_reg,),
                data_srcs=(self._ready,),
            )
        )
        for filler in range(self._distance):
            ops.append(
                store(
                    self._filler_store_pcs[filler],
                    self._filler_region.slot(filler, 8),
                    8,
                    addr_srcs=(self._ready,),
                    data_srcs=(self._ready,),
                )
            )
        ops.append(cond_branch(self._inter_pc, True, self._inter_target))
        ops.append(load(self._load_pc, load_address, self._size, self._dst_reg, (self._ready,)))
        ops.extend(self._consumers.emit(self._dst_reg))
        return ops


class MultiStoreConflict(Motif):
    """Narrow in-order stores feeding one wide load (Fig. 4).

    All stores derive their addresses from the same register, so they execute
    in order (the paper measures 70% of multi-store writers do). The wide
    load is only partially covered by the youngest store, so it stalls until
    the writers drain — i.e. it executes in order with respect to them.
    """

    def __init__(
        self,
        layout: LayoutContext,
        num_stores: int = 8,
        store_size: int = 1,
        load_size: int = 8,
        setup_footprint: int = 256 * 1024,
    ) -> None:
        super().__init__(layout)
        if num_stores * store_size < load_size:
            raise ValueError("stores must cover the load")
        self._num_stores = num_stores
        self._store_size = store_size
        self._load_size = load_size
        self._chain = _LateAddressChain(layout, setup_footprint)
        self._store_pcs = layout.pcs.fresh_block(num_stores)
        self._data_region = layout.memory.region(64)
        self._load_pc = layout.pcs.fresh()
        self._use_pc = layout.pcs.fresh()
        self._dst_reg = layout.regs.fresh()
        self._use_reg = layout.regs.fresh()
        self._consumers = _ConsumerChain(layout)
        self._ready = layout.regs.ready_reg

    def activate(self, rng: DeterministicRNG) -> List[MicroOp]:
        base = self._data_region.slot(0, self._load_size)
        ops = self._chain.emit(rng, self._ready)
        for index in range(self._num_stores):
            ops.append(
                store(
                    self._store_pcs[index],
                    base + index * self._store_size,
                    self._store_size,
                    addr_srcs=(self._chain.addr_reg,),
                    data_srcs=(self._ready,),
                )
            )
        ops.append(load(self._load_pc, base, self._load_size, self._dst_reg, (self._ready,)))
        ops.extend(self._consumers.emit(self._dst_reg))
        return ops


class StoreSetStress(Motif):
    """A recurrence loop with several in-flight instances of one static store.

    Iteration ``k`` stores to slot ``k`` and loads slot ``k-1`` — the value
    the *previous* dynamic instance of the same static store produced. At
    each load's dispatch, the last fetched store of its set is the *youngest*
    in-flight instance (iteration ``k``'s own store), so Store Sets waits on
    the wrong, later-resolving instance and additionally serialises all the
    instances (Sec. VI-C, 500.perlbench_3). A distance predictor learns
    distance 1 once and waits only for the true producer.

    Each iteration carries its own late-address chain, so the instances
    resolve at staggered times and the serialisation genuinely costs cycles.
    """

    def __init__(
        self,
        layout: LayoutContext,
        iterations: int = 4,
        setup_footprint: int = 1024 * 1024,
        access_size: int = 8,
    ) -> None:
        super().__init__(layout)
        if iterations < 2:
            raise ValueError("need at least 2 iterations for the recurrence")
        self._iterations = iterations
        self._size = access_size
        self._chain = _LateAddressChain(layout, setup_footprint)
        self._loop_branch_pc = layout.pcs.fresh()
        self._loop_target = layout.pcs.fresh()
        self._store_pc = layout.pcs.fresh()
        self._load_pc = layout.pcs.fresh()
        self._use_pc = layout.pcs.fresh()
        self._data_region = layout.memory.region(access_size * (iterations + 1) * 2)
        self._dst_reg = layout.regs.fresh()
        self._use_reg = layout.regs.fresh()
        self._consumers = _ConsumerChain(layout)
        self._ready = layout.regs.ready_reg

    def activate(self, rng: DeterministicRNG) -> List[MicroOp]:
        ops: List[MicroOp] = []
        for iteration in range(self._iterations):
            store_address = self._data_region.slot(iteration + 1, self._size)
            load_address = self._data_region.slot(iteration, self._size)
            ops.append(cond_branch(self._loop_branch_pc, True, self._loop_target))
            ops.extend(self._chain.emit(rng, self._loop_reg()))
            ops.append(
                store(
                    self._store_pc,
                    store_address,
                    self._size,
                    addr_srcs=(self._chain.addr_reg,),
                    data_srcs=(self._ready,),
                )
            )
            if iteration > 0:
                # Reads what the previous instance of the same store wrote.
                ops.append(
                    load(self._load_pc, load_address, self._size, self._dst_reg, (self._ready,))
                )
                ops.extend(self._consumers.emit(self._dst_reg))
        return ops


class SpillChurn(Motif):
    """Interleaved spill/fill pairs whose pairing occasionally swaps.

    Two static stores write two slots and two static loads read them back.
    A visible conditional branch decides the pairing; when it flips (with
    probability ``swap_prob``), each load's producer — and therefore its
    store distance — changes. Over time every load conflicts with *both*
    stores, so Store Sets merges everything into one set: both stores
    serialise and both loads wait on the last-fetched store regardless of
    which one they actually need. Path-based distance predictors instead
    learn one entry per pairing.
    """

    def __init__(
        self,
        layout: LayoutContext,
        swap_prob: float = 0.25,
        setup_footprint: int = 2 * 1024 * 1024,
        access_size: int = 8,
    ) -> None:
        super().__init__(layout)
        if not 0.0 <= swap_prob <= 1.0:
            raise ValueError(f"swap_prob out of range: {swap_prob}")
        self._swap_prob = swap_prob
        self._size = access_size
        self._chain = _LateAddressChain(layout, setup_footprint)
        self._pair_branch_pc = layout.pcs.fresh()
        self._pair_target = layout.pcs.fresh()
        self._inter_pc = layout.pcs.fresh()
        self._inter_target = layout.pcs.fresh()
        self._store_pcs = layout.pcs.fresh_block(2)
        self._load_pcs = layout.pcs.fresh_block(2)
        self._use_pcs = layout.pcs.fresh_block(2)
        self._data_region = layout.memory.region(access_size * 4)
        self._dst_regs = layout.regs.fresh_block(2)
        self._use_regs = layout.regs.fresh_block(2)
        self._ready = layout.regs.ready_reg
        self._swapped = False

    def activate(self, rng: DeterministicRNG) -> List[MicroOp]:
        if rng.chance(self._swap_prob):
            self._swapped = not self._swapped
        slots = (1, 0) if self._swapped else (0, 1)
        ops = self._chain.emit(rng, self._loop_reg())
        ops.append(cond_branch(self._pair_branch_pc, self._swapped, self._pair_target))
        for index in range(2):
            ops.append(
                store(
                    self._store_pcs[index],
                    self._data_region.slot(slots[index], self._size),
                    self._size,
                    addr_srcs=(self._chain.addr_reg,),
                    data_srcs=(self._ready,),
                )
            )
        ops.append(cond_branch(self._inter_pc, True, self._inter_target))
        for index in range(2):
            ops.append(
                load(
                    self._load_pcs[index],
                    self._data_region.slot(index, self._size),
                    self._size,
                    self._dst_regs[index],
                    (self._ready,),
                )
            )
            ops.append(alu(self._use_pcs[index], self._use_regs[index], (self._dst_regs[index],)))
        return ops


class CallHeavyConflict(Motif):
    """A stable conflict reached through a call/return pair.

    Calls enter the NoSQ predictor's history view (2 PC bits per call) but are
    *not* divergent for PHAST; alternating call sites test whether call
    history helps or merely dilutes.
    """

    def __init__(
        self,
        layout: LayoutContext,
        num_call_sites: int = 2,
        distance: int = 0,
        setup_footprint: int = 1024 * 1024,
        access_size: int = 8,
    ) -> None:
        super().__init__(layout)
        self._chain = _LateAddressChain(layout, setup_footprint)
        self._call_pcs = layout.pcs.fresh_block(num_call_sites)
        self._callee_pc = layout.pcs.fresh()
        self._return_pc = layout.pcs.fresh()
        self._guard_pc = layout.pcs.fresh()
        self._guard_target = layout.pcs.fresh()
        self._inter_pc = layout.pcs.fresh()
        self._inter_target = layout.pcs.fresh()
        self._distance = distance
        self._size = access_size
        self._store_pc = layout.pcs.fresh()
        self._filler_store_pcs = layout.pcs.fresh_block(max(1, distance))
        self._filler_region = layout.memory.region(4096)
        self._data_region = layout.memory.region(64)
        self._load_pc = layout.pcs.fresh()
        self._use_pc = layout.pcs.fresh()
        self._dst_reg = layout.regs.fresh()
        self._use_reg = layout.regs.fresh()
        self._consumers = _ConsumerChain(layout)
        self._ready = layout.regs.ready_reg

    def activate(self, rng: DeterministicRNG) -> List[MicroOp]:
        call_site = rng.randint(0, len(self._call_pcs) - 1)
        address = self._data_region.slot(0, self._size)
        ops = self._chain.emit(rng, self._ready)
        ops.append(cond_branch(self._guard_pc, True, self._guard_target))
        ops.append(call_branch(self._call_pcs[call_site], self._callee_pc))
        ops.append(
            store(
                self._store_pc,
                address,
                self._size,
                addr_srcs=(self._chain.addr_reg,),
                data_srcs=(self._ready,),
            )
        )
        for filler in range(self._distance):
            ops.append(
                store(
                    self._filler_store_pcs[filler],
                    self._filler_region.slot(filler, 8),
                    8,
                    addr_srcs=(self._ready,),
                    data_srcs=(self._ready,),
                )
            )
        ops.append(cond_branch(self._inter_pc, True, self._inter_target))
        ops.append(load(self._load_pc, address, self._size, self._dst_reg, (self._ready,)))
        ops.append(
            return_branch(self._return_pc, self._call_pcs[call_site] + 4)
        )
        ops.extend(self._consumers.emit(self._dst_reg))
        return ops


class OverwriteConflict(Motif):
    """A slow store overwritten by a fast store before the load (Fig. 3c).

    Store 1's address resolves late (chain), store 2 overwrites the same
    location immediately with ready operands, and the load reads it. The
    load correctly forwards from store 2; when store 1 finally resolves, a
    simulator without the Sec. IV-A1 forwarding filter squashes the load
    even though its value is correct. This dead-store-overwrite pattern
    (initialise-then-update) is what makes the FWD filter worth several
    percent (Fig. 12), and PHAST the largest beneficiary: without the
    filter it learns the *older* store with a longer history, which then
    outranks the correct dependence.
    """

    def __init__(
        self,
        layout: LayoutContext,
        setup_footprint: int = 2 * 1024 * 1024,
        access_size: int = 8,
    ) -> None:
        super().__init__(layout)
        self._size = access_size
        self._chain = _LateAddressChain(layout, setup_footprint)
        self._lead_branch_pc = layout.pcs.fresh()
        self._lead_target = layout.pcs.fresh()
        self._slow_store_pc = layout.pcs.fresh()
        self._fast_store_pc = layout.pcs.fresh()
        self._inter_pc = layout.pcs.fresh()
        self._inter_target = layout.pcs.fresh()
        self._data_region = layout.memory.region(64)
        self._load_pc = layout.pcs.fresh()
        self._dst_reg = layout.regs.fresh()
        self._use_reg = layout.regs.fresh()
        self._consumers = _ConsumerChain(layout)
        self._ready = layout.regs.ready_reg

    def activate(self, rng: DeterministicRNG) -> List[MicroOp]:
        address = self._data_region.slot(0, self._size)
        ops = self._chain.emit(rng, self._ready)
        ops.append(cond_branch(self._lead_branch_pc, True, self._lead_target))
        # The slow initialising store: address hangs off the missing chain.
        ops.append(
            store(
                self._slow_store_pc,
                address,
                self._size,
                addr_srcs=(self._chain.addr_reg,),
                data_srcs=(self._ready,),
            )
        )
        # The fast overwriting store: ready operands, resolves immediately.
        ops.append(
            store(
                self._fast_store_pc,
                address,
                self._size,
                addr_srcs=(self._ready,),
                data_srcs=(self._ready,),
            )
        )
        ops.append(cond_branch(self._inter_pc, True, self._inter_target))
        ops.append(load(self._load_pc, address, self._size, self._dst_reg, (self._ready,)))
        ops.extend(self._consumers.emit(self._dst_reg))
        return ops
