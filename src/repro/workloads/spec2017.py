"""SPEC CPU 2017-like workload profiles.

Each profile approximates one application/input pair from the paper's
evaluation. Parameters encode the per-application observations reported in
Sec. VI:

* 502.gcc inputs: the highest path counts of the suite, plus occasional
  dependences that are not path dependent (cold-miss-dominated violations).
* 541.leela / 510.parest / 544.nab: data-dependent occasional conflicts —
  the main false-positive source for PHAST.
* 511.povray: dependences tightly tied to branch history through an indirect
  branch with a handful of targets (the Sec. III-C example: PHAST resolves it
  with a 2-branch history).
* 500.perlbench_3: multiple in-flight instances of the same static store —
  the Store Sets serialisation weakness.
* 503.bwaves (0.25% of loads) and 525.x264_3: loads whose bytes come from
  several narrow stores (Fig. 4).
* 531.deepsjeng / 527.cam4 / 526.blender: deep path-sensitive dependences.
* FP/streaming codes (lbm, wrf, fotonik3d, roms, imagick, namd, cactuBSSN):
  few conflicts, predictable branches.

Trace-length note: where the paper simulates 100M-instruction SimPoint
intervals, these profiles are stationary by construction, so much shorter
traces reach steady state; cold-start effects shrink with length exactly as
the paper's cold misses do.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.workloads.generator import MotifSpec, WorkloadProfile


def _filler(
    weight: float,
    noise: float,
    load_fraction: float = 0.25,
    footprint: int = 64 * 1024,
    fp_fraction: float = 0.1,
    biased_taken_prob: float = 0.92,
    replicas: int = 4,
    access_pattern: str = "stride",
) -> MotifSpec:
    return MotifSpec(
        "filler",
        weight,
        {
            "random_branch_prob": noise,
            "load_fraction": load_fraction,
            "footprint": footprint,
            "fp_fraction": fp_fraction,
            "biased_taken_prob": biased_taken_prob,
            "access_pattern": access_pattern,
        },
        replicas=replicas,
    )


def _fp_filler(weight: float, noise: float = 0.05, footprint: int = 8 * 1024 * 1024) -> MotifSpec:
    return _filler(
        weight,
        noise,
        load_fraction=0.35,
        footprint=footprint,
        fp_fraction=0.45,
        biased_taken_prob=0.97,
    )


def _stable(
    weight: float,
    distance: int = 0,
    footprint: int = 2 * 1024 * 1024,
    replicas: int = 4,
) -> MotifSpec:
    return MotifSpec(
        "stable",
        weight,
        {"distance": distance, "setup_footprint": footprint},
        replicas=replicas,
    )


def _path(
    weight: float,
    distances,
    inter: int,
    indirect: bool = False,
    conflict_prob: float = 1.0,
    footprint: int = 2 * 1024 * 1024,
    herald_bits: int = 0,
    persistence: float = 0.6,
    replicas: int = 4,
) -> MotifSpec:
    if indirect and herald_bits == 0:
        # Real indirect dispatches are preceded by correlated type/range
        # checks (a switch's bounds tests); give conditional-history
        # predictors full visibility of the path through them — NoSQ's
        # handicap should be its fixed 8-bit window, not blindness.
        herald_bits = max(1, (len(tuple(distances)) - 1).bit_length())
    return MotifSpec(
        "path",
        weight,
        {
            "distances": tuple(distances),
            "inter_branches": inter,
            "indirect": indirect,
            "conflict_prob": conflict_prob,
            "setup_footprint": footprint,
            "herald_bits": herald_bits,
            "persistence": persistence,
        },
        replicas=replicas,
    )


def _data_dep(
    weight: float,
    slots: int = 4,
    distance: int = 0,
    footprint: int = 128 * 1024,
    replicas: int = 4,
) -> MotifSpec:
    return MotifSpec(
        "data_dependent",
        weight,
        {"address_slots": slots, "distance": distance, "setup_footprint": footprint},
        replicas=replicas,
    )


def _spill(weight: float, swap_prob: float = 0.25, replicas: int = 4) -> MotifSpec:
    return MotifSpec("spill_churn", weight, {"swap_prob": swap_prob}, replicas=replicas)


def _overwrite(weight: float, replicas: int = 4) -> MotifSpec:
    """The Fig. 3c initialise-then-update pattern driving the FWD filter."""
    return MotifSpec("overwrite", weight, {}, replicas=replicas)


def _multi_store(weight: float, num_stores: int = 8, replicas: int = 2) -> MotifSpec:
    return MotifSpec(
        "multi_store", weight, {"num_stores": num_stores}, replicas=replicas
    )


def _store_set_stress(weight: float, iterations: int = 4, replicas: int = 4) -> MotifSpec:
    return MotifSpec(
        "store_set_stress", weight, {"iterations": iterations}, replicas=replicas
    )


def _call_heavy(
    weight: float, sites: int = 2, distance: int = 0, replicas: int = 4
) -> MotifSpec:
    return MotifSpec(
        "call_heavy",
        weight,
        {"num_call_sites": sites, "distance": distance},
        replicas=replicas,
    )


def _profile(name: str, seed: int, description: str, *motifs: MotifSpec) -> WorkloadProfile:
    return WorkloadProfile(name=name, seed=seed, description=description, motifs=motifs)


def _make_profiles() -> Dict[str, WorkloadProfile]:
    profiles = [
        _profile(
            "500.perlbench_1",
            101,
            "interpreter loop: mixed stable and shallow path-dependent conflicts",
            _filler(28, 0.25),
            _path(0.6, (0, 2), inter=1),
            _stable(0.4, distance=1),
            _call_heavy(0.3, sites=2),
            _spill(0.3),
            _store_set_stress(0.3, iterations=5),
            _overwrite(0.35),
        ),
        _profile(
            "500.perlbench_2",
            102,
            "regex engine: many paths through indirect dispatch",
            _filler(28, 0.3),
            _path(0.5, (0, 1, 2, 3, 4, 5, 6, 7), inter=3, indirect=True, replicas=12),
            _path(0.4, (1, 3), inter=3, replicas=8),
            _call_heavy(0.3, sites=3),
            _store_set_stress(0.25, iterations=4),
        ),
        _profile(
            "500.perlbench_3",
            103,
            "tight interpreter loop: several in-flight instances of one store",
            _filler(22.4, 0.3),
            _store_set_stress(0.9, iterations=6),
            _stable(0.3, distance=0),
        ),
        _profile(
            "502.gcc_1",
            111,
            "compiler: extreme path counts plus occasional data-dependent conflicts",
            _filler(25.2, 0.35, load_fraction=0.3),
            _path(0.5, (0, 1, 2, 3, 4, 5, 6, 7), inter=5, indirect=True, replicas=16),
            _path(0.4, (0, 2), inter=5, replicas=12),
            _data_dep(0.2, slots=8, replicas=8),
            _store_set_stress(0.25, iterations=4),
        ),
        _profile(
            "502.gcc_2",
            112,
            "compiler: deep path-dependent conflicts, heavy branch noise",
            _filler(25.2, 0.35, load_fraction=0.3),
            _path(0.5, (0, 1, 2, 3), inter=7, indirect=True, replicas=16),
            _path(0.4, (1, 4), inter=7, replicas=12),
            _path(0.2, (0, 3), inter=11, replicas=6),
            _data_dep(0.15, slots=8, replicas=8),
            _spill(0.3, replicas=6),
        ),
        _profile(
            "502.gcc_3",
            113,
            "compiler: mixed depth paths and data-dependent conflicts",
            _filler(25.2, 0.32, load_fraction=0.3),
            _path(0.5, (0, 1, 2, 3, 4, 5), inter=3, indirect=True, replicas=16),
            _data_dep(0.25, slots=6, replicas=8),
            _stable(0.2, distance=2, replicas=8),
            _store_set_stress(0.2, iterations=4),
            _overwrite(0.25, replicas=6),
        ),
        _profile(
            "502.gcc_4",
            114,
            "compiler: moderate path behaviour",
            _filler(28, 0.3, load_fraction=0.3),
            _path(0.5, (0, 3), inter=3),
            _data_dep(0.15, slots=6),
            _spill(0.3, swap_prob=0.3),
        ),
        _profile(
            "502.gcc_5",
            115,
            "compiler: very many shallow paths",
            _filler(25.2, 0.35, load_fraction=0.3),
            _path(0.6, (0, 1, 2, 3, 4, 5, 6, 7), inter=1, indirect=True, replicas=20),
            _path(0.3, (0, 1), inter=5, replicas=8),
            _data_dep(0.15, slots=8, replicas=8),
            _store_set_stress(0.2, iterations=4),
        ),
        _profile(
            "503.bwaves",
            121,
            "FP stencil: rare multi-store wide loads, in-order writers",
            _fp_filler(33.6),
            _multi_store(0.22, num_stores=8),
            _stable(0.1, distance=0),
        ),
        _profile(
            "505.mcf",
            131,
            "pointer chasing: memory bound, few stable conflicts",
            _filler(28, 0.22, load_fraction=0.45, footprint=32 * 1024 * 1024, access_pattern="random"),
            _stable(0.25, distance=0, footprint=16 * 1024 * 1024),
            _store_set_stress(0.2, iterations=4),
            _overwrite(0.2),
        ),
        _profile(
            "507.cactuBSSN",
            141,
            "FP PDE solver: predictable, almost conflict-free",
            _fp_filler(39.2),
            _stable(0.08, distance=1),
        ),
        _profile(
            "508.namd",
            151,
            "FP molecular dynamics: conflict-light",
            _fp_filler(39.2, noise=0.1),
            _stable(0.1, distance=0),
        ),
        _profile(
            "510.parest",
            161,
            "FE solver: data-dependent occasional conflicts (false-positive heavy)",
            _filler(25.2, 0.25, fp_fraction=0.3),
            _data_dep(0.35, slots=4),
            _data_dep(0.2, slots=3, distance=1),
            _stable(0.2, distance=0),
        ),
        _profile(
            "511.povray",
            171,
            "ray tracer: dependences tied to an indirect branch (Sec. III-C example)",
            _filler(28, 0.3, fp_fraction=0.25),
            _path(0.8, (0, 1, 2), inter=1, indirect=True),
            _stable(0.25, distance=0),
        ),
        _profile(
            "519.lbm",
            181,
            "FP streaming: essentially no memory dependences",
            _fp_filler(44.8, footprint=32 * 1024 * 1024),
            _stable(0.04, distance=0),
        ),
        _profile(
            "520.omnetpp",
            191,
            "discrete event simulator: pointer-heavy, shallow path conflicts",
            _filler(25.2, 0.25, load_fraction=0.4, footprint=16 * 1024 * 1024, access_pattern="random"),
            _path(0.5, (0, 1), inter=1, replicas=8),
            _data_dep(0.15, slots=5, replicas=6),
            _call_heavy(0.3, sites=3, replicas=6),
            _spill(0.35, replicas=6),
            _store_set_stress(0.3, iterations=4),
            _overwrite(0.3),
        ),
        _profile(
            "521.wrf",
            201,
            "FP weather model: conflict-light",
            _fp_filler(39.2),
            _stable(0.1, distance=1),
        ),
        _profile(
            "523.xalancbmk",
            211,
            "XSLT processor: call-heavy with path-dependent conflicts",
            _filler(25.2, 0.25),
            _call_heavy(0.5, sites=4, distance=1, replicas=8),
            _path(0.5, (0, 2), inter=3, replicas=8),
            _stable(0.2, distance=0),
            _spill(0.4, swap_prob=0.2, replicas=6),
            _store_set_stress(0.25, iterations=4),
            _overwrite(0.3),
        ),
        _profile(
            "525.x264_1",
            221,
            "video encoder: stable plus shallow path conflicts",
            _filler(28, 0.3, fp_fraction=0.2),
            _stable(0.4, distance=0),
            _path(0.3, (0, 1), inter=1),
            _store_set_stress(0.25, iterations=5),
            _overwrite(0.35),
        ),
        _profile(
            "525.x264_2",
            222,
            "video encoder: stable conflicts at moderate distance",
            _filler(28, 0.3, fp_fraction=0.2),
            _stable(0.4, distance=2),
            _path(0.3, (1, 2), inter=1),
            _store_set_stress(0.25, iterations=5),
        ),
        _profile(
            "525.x264_3",
            223,
            "video encoder: 8x1-byte stores feeding 8-byte loads (Sec. III-A)",
            _filler(28, 0.3, fp_fraction=0.2),
            _multi_store(0.35, num_stores=8),
            _stable(0.3, distance=0),
            _overwrite(0.3),
        ),
        _profile(
            "526.blender",
            231,
            "renderer: many deep paths",
            _filler(25.2, 0.3, fp_fraction=0.3),
            _path(0.5, (0, 1, 2, 3), inter=5, indirect=True, replicas=12),
            _path(0.3, (0, 2), inter=5, replicas=8),
            _path(0.15, (1, 2), inter=11, replicas=4),
            _data_dep(0.1, slots=6, replicas=6),
            _store_set_stress(0.2, iterations=4),
        ),
        _profile(
            "527.cam4",
            241,
            "FP climate model: many deep paths despite FP character",
            _fp_filler(28, noise=0.25),
            _path(0.4, (0, 1), inter=7, replicas=10),
            _path(0.3, (0, 1, 2, 3), inter=7, indirect=True, replicas=10),
            _path(0.15, (0, 2), inter=15, replicas=4),
        ),
        _profile(
            "531.deepsjeng",
            251,
            "chess search: deeply path-sensitive dependences",
            _filler(25.2, 0.32),
            _path(0.5, (0, 2), inter=5, replicas=8),
            _path(0.4, (1, 3), inter=7, replicas=8),
            _data_dep(0.1, slots=5, replicas=4),
            _spill(0.2),
        ),
        _profile(
            "538.imagick",
            261,
            "image processing: regular FP, conflict-light",
            _fp_filler(42),
            _stable(0.06, distance=0),
        ),
        _profile(
            "541.leela",
            271,
            "go engine: data-dependent conflicts with few paths",
            _filler(25.2, 0.28),
            _data_dep(0.4, slots=6),
            _data_dep(0.2, slots=5, distance=2),
            _path(0.15, (0, 1), inter=2),
        ),
        _profile(
            "544.nab",
            281,
            "FP molecular modelling: occasional data-dependent conflicts",
            _fp_filler(30.8, noise=0.2),
            _data_dep(0.225, slots=3),
        ),
        _profile(
            "548.exchange2",
            291,
            "branch-dense integer puzzle: no memory conflicts",
            _filler(33.6, 0.2, load_fraction=0.12, footprint=16 * 1024),
            _filler(16.8, 0.3, load_fraction=0.1, footprint=16 * 1024),
        ),
        _profile(
            "549.fotonik3d",
            301,
            "FP electromagnetics: streaming, conflict-light",
            _fp_filler(42, footprint=16 * 1024 * 1024),
            _stable(0.05, distance=0),
        ),
        _profile(
            "554.roms",
            311,
            "FP ocean model: streaming, conflict-light",
            _fp_filler(42, footprint=16 * 1024 * 1024),
            _stable(0.06, distance=1),
        ),
        _profile(
            "557.xz",
            321,
            "compressor: stable and data-dependent conflicts",
            _filler(28, 0.22, load_fraction=0.35),
            _stable(0.4, distance=2, replicas=6),
            _data_dep(0.15, slots=5, replicas=6),
            _path(0.2, (0, 1), inter=1, replicas=6),
            _spill(0.25),
            _store_set_stress(0.2, iterations=5),
            _overwrite(0.25),
        ),
    ]
    return {profile.name: profile for profile in profiles}


SPEC_PROFILES: Dict[str, WorkloadProfile] = _make_profiles()


def spec_suite(subset: Optional[int] = None) -> List[str]:
    """Workload names in suite order; ``subset`` truncates for quick runs."""
    names = sorted(SPEC_PROFILES)
    return names[:subset] if subset else names


def workload(name: str, seed: Optional[int] = None) -> WorkloadProfile:
    """Look up a profile by name, with a helpful error.

    ``seed`` overrides the profile's trace seed (same static structure,
    different dynamic draw) — the knob the fault-tolerant harness and the
    ``--seed`` CLI flag use to reproduce a failing sweep cell bit-for-bit.
    """
    try:
        profile = SPEC_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(sorted(SPEC_PROFILES))}"
        ) from None
    if seed is not None and seed != profile.seed:
        profile = replace(profile, seed=seed)
    return profile
