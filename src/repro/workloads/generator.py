"""Workload profiles and trace construction.

A :class:`WorkloadProfile` is a declarative description — a seed plus a
weighted list of motif specifications. :func:`build_trace` instantiates each
motif's static layout once and then draws activations by weight until the
requested dynamic length is reached, yielding a deterministic
:class:`~repro.isa.trace.Trace` for a given (profile, length) pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Type

from repro.common.rng import DeterministicRNG
from repro.isa.microop import MicroOp
from repro.isa.trace import Trace
from repro.workloads.layout import LayoutContext
from repro.workloads.motifs import (
    CallHeavyConflict,
    ComputeFiller,
    DataDependentConflict,
    Motif,
    MultiStoreConflict,
    OverwriteConflict,
    PathDependentConflict,
    SpillChurn,
    StableConflict,
    StoreSetStress,
)

#: Bump whenever a change to the generator (motif layout, RNG draws, op
#: emission) alters the trace produced for an existing (profile, num_ops)
#: pair. The trace artifact store keys on this, so stale on-disk artifacts
#: from an older generator are ignored rather than silently replayed.
GENERATOR_VERSION = "1"

#: Motif registry: profile specs name motifs by these keys.
MOTIF_REGISTRY: Dict[str, Type[Motif]] = {
    "filler": ComputeFiller,
    "stable": StableConflict,
    "path": PathDependentConflict,
    "data_dependent": DataDependentConflict,
    "multi_store": MultiStoreConflict,
    "store_set_stress": StoreSetStress,
    "call_heavy": CallHeavyConflict,
    "spill_churn": SpillChurn,
    "overwrite": OverwriteConflict,
}


@dataclass(frozen=True)
class MotifSpec:
    """One motif in a profile: registry key, mix weight, parameters.

    ``replicas`` instantiates that many *independent static copies* of the
    motif (distinct PCs, registers and data regions) sharing the spec's total
    weight. This models static code footprint: real applications have
    hundreds of distinct conflict sites, which is what fills prediction
    tables, creates aliasing under small budgets (Fig. 13), and drives the
    per-application path counts (Fig. 9).
    """

    kind: str
    weight: float
    params: Mapping[str, object] = field(default_factory=dict)
    replicas: int = 1

    def __post_init__(self) -> None:
        if self.kind not in MOTIF_REGISTRY:
            raise KeyError(
                f"unknown motif {self.kind!r}; known: {sorted(MOTIF_REGISTRY)}"
            )
        if self.weight <= 0:
            raise ValueError(f"motif weight must be positive, got {self.weight}")
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")


@dataclass(frozen=True)
class WorkloadProfile:
    """A named synthetic application.

    ``run_length_mean`` controls phase behaviour: motifs are activated in
    geometric runs of this mean length rather than interleaved i.i.d., because
    real programs execute loop bodies repeatedly — which is what lets
    fixed-history predictors see recurring context windows.
    """

    name: str
    seed: int
    motifs: Sequence[MotifSpec]
    description: str = ""
    run_length_mean: float = 12.0

    def __post_init__(self) -> None:
        if not self.motifs:
            raise ValueError(f"profile {self.name!r} has no motifs")
        if self.run_length_mean < 1.0:
            raise ValueError("run_length_mean must be >= 1")


def build_trace(profile: WorkloadProfile, num_ops: int) -> Trace:
    """Generate a deterministic trace of ``num_ops`` micro-ops for ``profile``.

    The same (profile, num_ops) pair always yields the identical trace: all
    randomness flows from the profile's seed.
    """
    if num_ops <= 0:
        raise ValueError(f"num_ops must be positive, got {num_ops}")
    layout = LayoutContext.fresh()
    rng = DeterministicRNG(profile.seed)
    instances: List[Motif] = []
    weights: List[float] = []
    for spec in profile.motifs:
        motif_class = MOTIF_REGISTRY[spec.kind]
        for _ in range(spec.replicas):
            instances.append(motif_class(layout, **dict(spec.params)))
            weights.append(spec.weight / spec.replicas)

    ops: List[MicroOp] = []
    indices = list(range(len(instances)))
    continue_prob = 1.0 - 1.0 / profile.run_length_mean
    max_run = int(4 * profile.run_length_mean)
    while len(ops) < num_ops:
        choice = rng.weighted_choice(indices, weights)
        run = 1
        while run < max_run and rng.chance(continue_prob):
            run += 1
        for _ in range(run):
            ops.extend(instances[choice].activate(rng))
            if len(ops) >= num_ops:
                break
    return Trace(ops[:num_ops], name=profile.name)
