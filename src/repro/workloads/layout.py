"""Static layout allocation for synthetic programs.

Motifs allocate their *static* resources once — instruction addresses (PCs),
private architectural registers, and data regions — and then replay dynamic
activations over that fixed layout. Fixed PCs are what make the workload
learnable: every memory dependence predictor in the paper is trained per
static load/store (and per path), so a motif's dynamic instances must share
static identity exactly like iterations of a real loop body do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.rng import DeterministicRNG

#: Registers 0..3 are never written: operands in them are ready immediately
#: (architectural zero / constants / stack pointer stand-ins).
NUM_READY_REGS = 4


class PCAllocator:
    """Hands out unique static instruction addresses, 4 bytes apart."""

    def __init__(self, base: int = 0x40_0000) -> None:
        self._next = base

    def fresh(self) -> int:
        pc = self._next
        self._next += 4
        return pc

    def fresh_block(self, count: int) -> List[int]:
        return [self.fresh() for _ in range(count)]


class RegisterAllocator:
    """Hands out architectural registers from the writable pool.

    When the pool is exhausted, allocation wraps around. Re-used registers
    create occasional cross-motif read-after-write timing edges — harmless
    realistic register-pressure noise (values are not simulated, only
    readiness cycles are).
    """

    def __init__(self, num_regs: int) -> None:
        if num_regs <= NUM_READY_REGS + 1:
            raise ValueError(f"need more than {NUM_READY_REGS + 1} registers")
        self._num_regs = num_regs
        self._next = NUM_READY_REGS

    @property
    def ready_reg(self) -> int:
        """A register that is always ready (never written)."""
        return 0

    def fresh(self) -> int:
        reg = self._next
        self._next += 1
        if self._next >= self._num_regs:
            self._next = NUM_READY_REGS
        return reg

    def fresh_block(self, count: int) -> List[int]:
        return [self.fresh() for _ in range(count)]


@dataclass(frozen=True)
class AddressRegion:
    """A contiguous chunk of the synthetic address space."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.base < 0 or self.size <= 0:
            raise ValueError(f"bad region base={self.base:#x} size={self.size}")

    def slot(self, index: int, access_size: int) -> int:
        """Deterministic aligned address for logical slot ``index``."""
        offset = (index * access_size) % self.size
        return self.base + (offset // access_size) * access_size

    def random_aligned(self, rng: DeterministicRNG, access_size: int) -> int:
        """Uniform aligned address inside the region."""
        slots = self.size // access_size
        if slots <= 0:
            raise ValueError(f"region too small for {access_size}-byte access")
        return self.base + rng.randint(0, slots - 1) * access_size


class AddressSpaceAllocator:
    """Carves disjoint regions out of a flat data address space.

    Regions are 4 KiB aligned so distinct motifs never share cache lines by
    accident, which would add (realistic but confounding) accidental
    conflicts.
    """

    def __init__(self, base: int = 0x10_0000_0000) -> None:
        self._next = base

    def region(self, size: int) -> AddressRegion:
        aligned = (size + 0xFFF) & ~0xFFF
        region = AddressRegion(base=self._next, size=aligned)
        self._next += aligned + 0x1000  # guard page between regions
        return region


@dataclass
class LayoutContext:
    """Everything a motif needs to allocate its static layout."""

    pcs: PCAllocator
    regs: RegisterAllocator
    memory: AddressSpaceAllocator

    @staticmethod
    def fresh(num_regs: int = 512) -> "LayoutContext":
        return LayoutContext(
            pcs=PCAllocator(),
            regs=RegisterAllocator(num_regs),
            memory=AddressSpaceAllocator(),
        )
