"""Load/store queue semantics: forwarding, violations, and the FWD filter.

This module contains the *ordering logic* of the LQ/SQ/SB as pure functions
over store records, so it can be unit tested against the paper's Figure 3
scenarios directly:

* Fig. 3(a): load executes after both stores — forwarding from the youngest.
* Fig. 3(b): load executes between the stores — forward from the older one,
  squash when the younger resolves.
* Fig. 3(c): load forwards from the younger store, the *older* store resolves
  late — must NOT squash, but naive simulators do; the Sec. IV-A1 forwarding
  filter (compare the conflicting store's sequence number against the
  forwarder's) suppresses it.
* Fig. 3(d): load overtakes both stores — squash; at-commit training must
  learn the *youngest* store, at-detection training sees whichever store's
  address resolves first.

Multi-store coverage (Sec. III-A, Fig. 4): when the youngest matching store
does not cover all the load's bytes, the load stalls until the overlapping
stores drain to the cache, and the analysis records whether the load's bytes
come from two or more distinct stores.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence


class StoreRecord:
    """An in-flight store as the LSQ logic sees it.

    ``addr_ready`` is the cycle its address resolves (AGU done); ``exec_cycle``
    is when both address and data are available (the store has executed and
    can forward); ``drain_cycle`` is when it leaves the SB into the L1D, after
    which loads read its value from the cache.
    """

    __slots__ = (
        "seq",
        "pc",
        "address",
        "size",
        "store_number",
        "addr_ready",
        "exec_cycle",
        "drain_cycle",
        "hist_snapshot",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        address: int,
        size: int,
        store_number: int,
        addr_ready: int,
        exec_cycle: int,
        drain_cycle: int,
        hist_snapshot: int,
    ) -> None:
        self.seq = seq
        self.pc = pc
        self.address = address
        self.size = size
        self.store_number = store_number
        self.addr_ready = addr_ready
        self.exec_cycle = exec_cycle
        self.drain_cycle = drain_cycle
        self.hist_snapshot = hist_snapshot

    @property
    def end(self) -> int:
        return self.address + self.size

    def overlaps(self, address: int, size: int) -> bool:
        return self.address < address + size and address < self.end

    def covers(self, address: int, size: int) -> bool:
        return self.address <= address and address + size <= self.end

    def __repr__(self) -> str:
        return (
            f"StoreRecord(seq={self.seq}, pc={self.pc:#x}, "
            f"addr={self.address:#x}+{self.size}, addr_ready={self.addr_ready})"
        )


class ForwardKind(enum.Enum):
    """Where a load's data comes from."""

    CACHE = "cache"  # no matching resolved store: read the hierarchy
    FORWARD = "forward"  # full coverage by the youngest matching resolved store
    PARTIAL = "partial"  # partial coverage: stall until writers drain, then cache


@dataclass
class LoadResolution:
    """Outcome of disambiguating one executed load against the store window."""

    kind: ForwardKind
    forwarder: Optional[StoreRecord]
    data_ready: Optional[int]  # None for CACHE (the pipeline asks the hierarchy)
    violated: bool
    violation_store_commit: Optional[StoreRecord]  # youngest conflicting (program order)
    violation_store_detect: Optional[StoreRecord]  # first conflicting to resolve
    true_store: Optional[StoreRecord]  # youngest overlapping visible store overall
    multi_store: bool  # load bytes supplied by >= 2 distinct stores
    overlapping_visible: int  # count of overlapping stores in the window


def _visible_overlapping(
    stores: Sequence[StoreRecord], address: int, size: int, exec_cycle: int
) -> List[StoreRecord]:
    """Stores still in SQ/SB at ``exec_cycle`` that overlap the load's bytes."""
    return [
        store
        for store in stores
        if store.drain_cycle > exec_cycle and store.overlaps(address, size)
    ]


def multi_store_suppliers(
    overlapping: Sequence[StoreRecord], address: int, size: int
) -> List[StoreRecord]:
    """Distinct youngest-writers of the load's bytes, in program order.

    ``overlapping`` must be in program order (oldest first). These are the
    stores the load actually depends on — the population whose execution
    order the paper measures in Fig. 4.
    """
    suppliers: dict = {}
    for byte in range(address, address + size):
        # Scan youngest-first: the first store containing the byte supplies it.
        for store in reversed(overlapping):
            if store.address <= byte < store.end:
                suppliers[store.seq] = store
                break
    return [store for _, store in sorted(suppliers.items())]


def is_multi_store(
    overlapping: Sequence[StoreRecord], address: int, size: int
) -> bool:
    """True when >= 2 distinct stores are the youngest writer of some load byte."""
    if len(overlapping) < 2:
        return False
    return len(multi_store_suppliers(overlapping, address, size)) >= 2


def resolve_load(
    stores: Sequence[StoreRecord],
    address: int,
    size: int,
    exec_cycle: int,
    l1d_latency: int,
    forwarding_filter: bool,
    checker: Optional[object] = None,
) -> LoadResolution:
    """Disambiguate a load executing at ``exec_cycle`` against older stores.

    ``stores`` must contain only stores *older* than the load, in program
    order (oldest first). Returns timing and violation information; the
    caller handles cache access for :attr:`ForwardKind.CACHE`.

    ``checker`` optionally receives the resolution for validation (an
    :class:`repro.sim.invariants.InvariantChecker`, injected so this module
    stays import-cycle free); an inconsistent outcome raises
    ``SimInvariantError`` instead of silently skewing timing.
    """
    overlapping = _visible_overlapping(stores, address, size, exec_cycle)
    if not overlapping:
        resolution = LoadResolution(
            kind=ForwardKind.CACHE,
            forwarder=None,
            data_ready=None,
            violated=False,
            violation_store_commit=None,
            violation_store_detect=None,
            true_store=None,
            multi_store=False,
            overlapping_visible=0,
        )
        if checker is not None:
            checker.check_load_resolution(
                resolution, stores, address, size, exec_cycle, forwarding_filter
            )
        return resolution

    true_store = overlapping[-1]  # youngest in program order
    multi_store = is_multi_store(overlapping, address, size)
    resolved = [store for store in overlapping if store.addr_ready <= exec_cycle]
    unresolved = [store for store in overlapping if store.addr_ready > exec_cycle]

    forwarder: Optional[StoreRecord] = None
    kind = ForwardKind.CACHE
    data_ready: Optional[int] = None
    if resolved:
        candidate = resolved[-1]  # youngest resolved match forwards
        if candidate.covers(address, size):
            forwarder = candidate
            kind = ForwardKind.FORWARD
            # Forwarding shares the L1D pipeline latency (Sec. V); if the
            # store's data is not ready yet the load stalls for it.
            data_ready = max(exec_cycle, candidate.exec_cycle) + l1d_latency
        else:
            # Partial coverage: wait for every overlapping writer to drain,
            # then read the merged bytes from the cache.
            kind = ForwardKind.PARTIAL
            drain = max(store.drain_cycle for store in overlapping)
            data_ready = max(exec_cycle, drain) + l1d_latency

    violated = False
    violation_commit: Optional[StoreRecord] = None
    violation_detect: Optional[StoreRecord] = None
    if unresolved and kind is not ForwardKind.PARTIAL:
        # A store whose address resolves after the load executed conflicts.
        youngest_unresolved = unresolved[-1]
        if forwarding_filter and forwarder is not None:
            # Sec. IV-A1: ignore conflicts with stores older than the
            # forwarder — the load already holds the latest value (Fig. 3c).
            threatening = [s for s in unresolved if s.seq > forwarder.seq]
        else:
            threatening = list(unresolved)
        if threatening:
            violated = True
            violation_commit = threatening[-1]  # youngest in program order
            violation_detect = min(threatening, key=lambda s: (s.addr_ready, s.seq))

    resolution = LoadResolution(
        kind=kind,
        forwarder=forwarder,
        data_ready=data_ready,
        violated=violated,
        violation_store_commit=violation_commit,
        violation_store_detect=violation_detect,
        true_store=true_store,
        multi_store=multi_store,
        overlapping_visible=len(overlapping),
    )
    if checker is not None:
        checker.check_load_resolution(
            resolution, stores, address, size, exec_cycle, forwarding_filter
        )
    return resolution
