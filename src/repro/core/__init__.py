"""Out-of-order core timing model.

The engine is a trace-driven *dependency-timeline* model (see DESIGN.md §3):
micro-ops are processed in program order and assigned dispatch / issue /
execute / complete / commit cycles under register dependences, structural
limits (ROB/IQ/LQ/SQ+SB occupancy, dispatch and commit width, execution
ports), memory latencies, MDP-imposed wait edges, branch redirect stalls, and
lazy memory-order-violation squashes with replay.
"""

from repro.core.config import CoreConfig, GENERATIONS
from repro.core.lsq import ForwardKind, LoadResolution, StoreRecord, resolve_load
from repro.core.pipeline import Pipeline, PipelineStats

__all__ = [
    "CoreConfig",
    "GENERATIONS",
    "ForwardKind",
    "LoadResolution",
    "StoreRecord",
    "resolve_load",
    "Pipeline",
    "PipelineStats",
]
