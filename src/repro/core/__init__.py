"""Out-of-order core timing model.

The engine is a trace-driven *dependency-timeline* model (see DESIGN.md §3):
micro-ops are processed in program order and assigned dispatch / issue /
execute / complete / commit cycles under register dependences, structural
limits (ROB/IQ/LQ/SQ+SB occupancy, dispatch and commit width, execution
ports), memory latencies, MDP-imposed wait edges, branch redirect stalls, and
lazy memory-order-violation squashes with replay.

Structurally the model is a set of stage components (:mod:`repro.core.stages`)
collaborating over a shared :class:`~repro.core.context.SimContext`, with all
observation — statistics, invariant checking, MDP training, interval metrics —
attached as probes on a typed event bus (:mod:`repro.core.probes`).
"""

from repro.core.config import CoreConfig, GENERATIONS
from repro.core.lsq import ForwardKind, LoadResolution, StoreRecord, resolve_load
from repro.core.pipeline import Pipeline, PipelineStats
from repro.core.probes import Probe, ProbeBus, ProbeEvent

__all__ = [
    "CoreConfig",
    "GENERATIONS",
    "ForwardKind",
    "LoadResolution",
    "StoreRecord",
    "resolve_load",
    "Pipeline",
    "PipelineStats",
    "Probe",
    "ProbeBus",
    "ProbeEvent",
]
