"""Shared per-run simulation state: cycle cursors, scoreboard, queues.

:class:`SimContext` is the blackboard the stage objects in
:mod:`repro.core.stages` collaborate through. It owns the structural model
of the core — dispatch/commit width cursors, execution-port slot tables,
the ROB/IQ/LQ/SQ occupancy rings, the register scoreboard and the in-flight
store window — plus the pre-resolved probe-bus emitters for the current
run (see :mod:`repro.core.probes`).

The context is rebuilt by ``Pipeline.run`` for every trace, so stages stay
stateless-between-runs and a ``Pipeline`` can be reused.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from operator import attrgetter
from typing import Deque, Dict, List, Optional, Tuple

from repro.core.config import CoreConfig
from repro.core.lsq import StoreRecord

_by_seq_key = attrgetter("seq")


class _WidthCursor:
    """Allocates slots of at most ``width`` events per cycle, in order."""

    __slots__ = ("width", "cycle", "count")

    def __init__(self, width: int) -> None:
        self.width = width
        self.cycle = 0
        self.count = 0

    def allocate(self, earliest: int) -> int:
        """Return the cycle of the next slot at or after ``earliest``."""
        if earliest > self.cycle:
            self.cycle = earliest
            self.count = 1
            return earliest
        if self.count < self.width:
            self.count += 1
            return self.cycle
        self.cycle += 1
        self.count = 1
        return self.cycle


class _PortPool:
    """Slot table for one execution-port class.

    Books up to ``ports`` issues per cycle. Unlike a next-free-cycle greedy
    tracker, a later-processed op can claim an *earlier* unused slot — which
    is what an out-of-order scheduler does: an op that becomes ready early
    must not queue behind an older op that books a far-future slot (e.g. a
    store whose address register resolves after a cache miss).
    """

    __slots__ = ("ports", "_booked")

    def __init__(self, ports: int) -> None:
        self.ports = ports
        self._booked: Dict[int, int] = {}

    def allocate(self, ready: int, busy_cycles: int = 1) -> int:
        """Book the earliest slot at or after ``ready``; returns issue cycle."""
        booked = self._booked
        cycle = ready
        if busy_cycles == 1:
            while booked.get(cycle, 0) >= self.ports:
                cycle += 1
            booked[cycle] = booked.get(cycle, 0) + 1
            return cycle
        while True:
            if all(
                booked.get(cycle + offset, 0) < self.ports
                for offset in range(busy_cycles)
            ):
                for offset in range(busy_cycles):
                    slot = cycle + offset
                    booked[slot] = booked.get(slot, 0) + 1
                return cycle
            cycle += 1


class _StoreWindow:
    """The in-flight store window (SQ + SB) with an address-granule index.

    The granule buckets are maintained *incrementally sorted by ``seq``*:
    the pipeline appends stores in program order, so insertion costs one
    comparison (out-of-order appends, used by unit tests, fall back to a
    bisect insert). The per-load ``candidates`` scan therefore never sorts
    in the common single-granule case — it copies a ready bucket.
    """

    __slots__ = ("_capacity", "_records", "_by_number", "_by_seq", "_by_granule")

    GRANULE_SHIFT = 3  # 8-byte granules; the generator emits aligned accesses

    def __init__(self, capacity: int) -> None:
        self._capacity = capacity
        self._records: Deque[StoreRecord] = deque()
        self._by_number: Dict[int, StoreRecord] = {}
        self._by_seq: Dict[int, StoreRecord] = {}
        self._by_granule: Dict[int, List[StoreRecord]] = {}

    def append(self, record: StoreRecord) -> None:
        records = self._records
        records.append(record)
        self._by_number[record.store_number] = record
        self._by_seq[record.seq] = record
        by_granule = self._by_granule
        first = record.address >> self.GRANULE_SHIFT
        last = (record.end - 1) >> self.GRANULE_SHIFT
        seq = record.seq
        for granule in range(first, last + 1):
            bucket = by_granule.get(granule)
            if bucket is None:
                by_granule[granule] = [record]
            elif bucket[-1].seq <= seq:
                bucket.append(record)
            else:
                insort(bucket, record, key=_by_seq_key)
        while len(records) > self._capacity:
            self._evict(records.popleft())

    def _evict(self, record: StoreRecord) -> None:
        del self._by_number[record.store_number]
        self._by_seq.pop(record.seq, None)
        first = record.address >> self.GRANULE_SHIFT
        last = (record.end - 1) >> self.GRANULE_SHIFT
        for granule in range(first, last + 1):
            bucket = self._by_granule.get(granule)
            if bucket:
                # FIFO eviction: the evictee is always the bucket's oldest.
                if bucket[0] is record:
                    del bucket[0]
                else:
                    bucket.remove(record)
                if not bucket:
                    del self._by_granule[granule]

    def by_number(self, store_number: int) -> Optional[StoreRecord]:
        return self._by_number.get(store_number)

    def by_seq(self, seq: int) -> Optional[StoreRecord]:
        return self._by_seq.get(seq)

    def candidates(self, address: int, size: int) -> List[StoreRecord]:
        """Stores possibly overlapping [address, address+size), oldest first."""
        first = address >> self.GRANULE_SHIFT
        last = (address + size - 1) >> self.GRANULE_SHIFT
        if first == last:
            bucket = self._by_granule.get(first)
            # Buckets are seq-ordered by construction: no sort needed.
            return list(bucket) if bucket else []
        seen: Dict[int, StoreRecord] = {}
        for granule in range(first, last + 1):
            for record in self._by_granule.get(granule, ()):
                seen[record.seq] = record
        found = list(seen.values())
        found.sort(key=_by_seq_key)
        return found

    def all_records(self) -> List[StoreRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)


class SimContext:
    """Everything one run's stages share: cursors, rings, scoreboard, window.

    Emitter attributes (``emit_*``) hold the pre-resolved probe-bus dispatch
    functions for the run, or ``None`` when the event type has no
    subscribers — the zero-subscriber fast path.
    """

    __slots__ = (
        # static references
        "config",
        "hierarchy",
        "history",
        "predictor",
        "branch_predictor",
        "checker",
        "trace",
        # config-derived scalars (cached off the config for the hot loop)
        "rob",
        "iq",
        "lq",
        "sq",
        "d2i",
        "l1d_latency",
        "fwd_filter",
        "wrong_path_depth",
        # structural state
        "dispatch",
        "commit",
        "drain",
        "ports",
        "commit_ring",
        "issue_ring",
        "load_ring",
        "store_ring",
        "reg_ready",
        "window",
        # progress counters
        "load_count",
        "store_count",
        "frontend_ready",
        "last_commit",
        "last_fetch_line",
        "wrong_path_after",
        "total",
        "warmup_ops",
        "warmup_end_cycle",
        # interval-boundary tracking (active only with an interval probe)
        "interval_ops",
        "interval_index",
        "interval_op_count",
        "interval_start_cycle",
        "interval_start_op",
        # pre-resolved probe emitters (None == no subscribers, skip emission)
        "emit_dispatched",
        "emit_load_resolved",
        "emit_multi_store",
        "emit_dep_predicted",
        "emit_violation",
        "emit_squash",
        "emit_wrong_path_load",
        "emit_store_recorded",
        "emit_branch_resolved",
        "emit_load_committed",
        "emit_op_committed",
        "emit_interval",
    )

    def __init__(
        self,
        config: CoreConfig,
        hierarchy,
        history,
        predictor,
        branch_predictor,
        checker,
        trace,
        total: int,
        warmup_ops: int,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.history = history
        self.predictor = predictor
        self.branch_predictor = branch_predictor
        self.checker = checker
        self.trace = trace

        self.rob = config.rob_entries
        self.iq = config.iq_entries
        self.lq = config.lq_entries
        self.sq = config.sq_entries
        self.d2i = config.dispatch_to_issue_latency
        self.l1d_latency = config.hierarchy.l1d.hit_latency
        self.fwd_filter = config.forwarding_filter
        self.wrong_path_depth = config.wrong_path_depth

        self.dispatch = _WidthCursor(config.dispatch_width)
        self.commit = _WidthCursor(config.commit_width)
        self.drain = _WidthCursor(config.store_drain_per_cycle)
        self.ports = {kind: _PortPool(count) for kind, count in config.ports.items()}

        self.commit_ring = [0] * self.rob  # commit cycle of the op `rob` back
        self.issue_ring = [0] * self.iq  # issue cycle of the op `iq` back
        self.load_ring = [0] * self.lq  # commit cycle of the load `lq` back
        self.store_ring = [0] * self.sq  # drain cycle of the store `sq` back
        self.reg_ready = [0] * config.num_arch_regs
        self.window = _StoreWindow(capacity=self.sq + 32)

        self.load_count = 0
        self.store_count = 0
        self.frontend_ready = 0
        self.last_commit = 0
        self.last_fetch_line = -1
        # Wrong-path replay memory: (branch pc, outcome) -> trace index of
        # the first op that followed that outcome. On a misprediction, the
        # ops after the *other* outcome are replayed as phantoms.
        self.wrong_path_after: Dict[Tuple[int, bool], int] = {}
        self.total = total
        self.warmup_ops = warmup_ops
        self.warmup_end_cycle = 0

        self.interval_ops = 0
        self.interval_index = 0
        self.interval_op_count = 0
        self.interval_start_cycle = 0
        self.interval_start_op = warmup_ops

        self.emit_dispatched = None
        self.emit_load_resolved = None
        self.emit_multi_store = None
        self.emit_dep_predicted = None
        self.emit_violation = None
        self.emit_squash = None
        self.emit_wrong_path_load = None
        self.emit_store_recorded = None
        self.emit_branch_resolved = None
        self.emit_load_committed = None
        self.emit_op_committed = None
        self.emit_interval = None

    def bind(self, bus) -> None:
        """Pre-resolve every event type against ``bus`` (run-entry fast path)."""
        from repro.core import probes as p

        self.emit_dispatched = bus.resolve(p.OpDispatched)
        self.emit_load_resolved = bus.resolve(p.LoadResolved)
        self.emit_multi_store = bus.resolve(p.MultiStoreLoad)
        self.emit_dep_predicted = bus.resolve(p.DependencePredicted)
        self.emit_violation = bus.resolve(p.Violation)
        self.emit_squash = bus.resolve(p.Squash)
        self.emit_wrong_path_load = bus.resolve(p.WrongPathLoad)
        self.emit_store_recorded = bus.resolve(p.StoreRecorded)
        self.emit_branch_resolved = bus.resolve(p.BranchResolved)
        self.emit_load_committed = bus.resolve(p.LoadCommitted)
        self.emit_op_committed = bus.resolve(p.OpCommitted)
        hint = bus.interval_hint()
        if hint is not None and bus.has_subscribers(p.IntervalBoundary):
            self.interval_ops = hint
            self.emit_interval = bus.resolve(p.IntervalBoundary)
        else:
            self.interval_ops = 0
            self.emit_interval = None
