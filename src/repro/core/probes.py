"""Typed probe/event bus: pipeline observability without inline bookkeeping.

The pipeline's scheduling loop emits *structured events* — one class per
observable fact (an op dispatched, a load resolved, a violation detected,
an interval boundary crossed) — onto a :class:`ProbeBus`. Everything that
used to be hard-wired into the loop body (statistics counting, invariant
checking, predictor training, windowed metrics) is a :class:`Probe`
subscribed to the event types it cares about.

Design constraints, in priority order:

1. **Zero-subscriber fast path.** At ``Pipeline.run`` entry, every event
   type is pre-resolved via :meth:`ProbeBus.resolve` to either ``None`` (no
   subscribers) or a single dispatch callable. The hot loop guards each
   emission with ``if emit_x is not None`` — an event nobody listens to
   costs one ``None`` comparison and the event object is *never
   constructed*. ``benchmarks/perf_smoke.py`` enforces this against a
   committed baseline.
2. **Synchronous, ordered delivery.** Handlers run inline at the emission
   point, in subscription order. Probes that mutate simulation state
   (the MDP training probe) therefore fire at exactly the same sequence
   point as the pre-bus inline calls, keeping results bit-identical.
3. **Cheap events.** Events are hand-written ``__slots__`` classes (about
   4x faster to construct than frozen dataclasses), because ``OpCommitted``
   is built once per committed micro-op.

This module is dependency-free within the package so that ``repro.mdp`` and
``repro.sim`` can both import it without cycles.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Type


class ProbeEvent:
    """Base class for all bus events; subclasses declare ``__slots__``."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self.__slots__
        )
        return f"{type(self).__name__}({fields})"


class OpDispatched(ProbeEvent):
    """A micro-op claimed its dispatch slot.

    ``rob_free_cycle``/``iq_free_cycle`` are the freeing cycles of the ops
    being displaced from the ROB/IQ rings (occupancy is checkable right
    here); ``slot_free_cycle`` is the LQ/LQ-analogue value for loads and
    stores, 0 otherwise.
    """

    __slots__ = (
        "index",
        "kind",
        "dispatch_cycle",
        "rob_free_cycle",
        "iq_free_cycle",
        "slot_free_cycle",
        "measuring",
    )

    def __init__(
        self, index, kind, dispatch_cycle, rob_free_cycle, iq_free_cycle,
        slot_free_cycle, measuring,
    ):
        self.index = index
        self.kind = kind
        self.dispatch_cycle = dispatch_cycle
        self.rob_free_cycle = rob_free_cycle
        self.iq_free_cycle = iq_free_cycle
        self.slot_free_cycle = slot_free_cycle
        self.measuring = measuring


class LoadResolved(ProbeEvent):
    """One load execution attempt disambiguated against the store window.

    Emitted once per *attempt* — a squashed-and-replayed load resolves (and
    is counted) once per execution, like the pre-bus counters.
    ``resolution`` is the full :class:`repro.core.lsq.LoadResolution`.
    """

    __slots__ = ("index", "pc", "resolution", "exec_cycle", "complete_cycle",
                 "measuring")

    def __init__(self, index, pc, resolution, exec_cycle, complete_cycle, measuring):
        self.index = index
        self.pc = pc
        self.resolution = resolution
        self.exec_cycle = exec_cycle
        self.complete_cycle = complete_cycle
        self.measuring = measuring


class MultiStoreLoad(ProbeEvent):
    """Oracle analysis found a load whose bytes come from >= 2 stores (Fig. 4)."""

    __slots__ = ("index", "pc", "writers_inorder", "measuring")

    def __init__(self, index, pc, writers_inorder, measuring):
        self.index = index
        self.pc = pc
        self.writers_inorder = writers_inorder
        self.measuring = measuring


class DependencePredicted(ProbeEvent):
    """The MDP predicted a dependence for a dispatching load attempt."""

    __slots__ = ("index", "pc", "prediction", "wait_targets", "measuring")

    def __init__(self, index, pc, prediction, wait_targets, measuring):
        self.index = index
        self.pc = pc
        self.prediction = prediction
        self.wait_targets = wait_targets
        self.measuring = measuring


class Violation(ProbeEvent):
    """A memory-order violation was detected (the MDP training event).

    ``info`` is the :class:`repro.mdp.base.ViolationInfo` the predictor
    trains with; ``phantom`` marks wrong-path (never-committed) loads whose
    at-detection training pollutes predictors (Sec. IV-A1).
    """

    __slots__ = ("index", "pc", "info", "phantom", "measuring")

    def __init__(self, index, pc, info, phantom, measuring):
        self.index = index
        self.pc = pc
        self.info = info
        self.phantom = phantom
        self.measuring = measuring


class Squash(ProbeEvent):
    """A mis-speculated load squashed the window behind it and replays."""

    __slots__ = ("index", "pc", "squash_cycle", "attempt_dispatch_cycle",
                 "replay_dispatch_cycle", "measuring")

    def __init__(self, index, pc, squash_cycle, attempt_dispatch_cycle,
                 replay_dispatch_cycle, measuring):
        self.index = index
        self.pc = pc
        self.squash_cycle = squash_cycle
        self.attempt_dispatch_cycle = attempt_dispatch_cycle
        self.replay_dispatch_cycle = replay_dispatch_cycle
        self.measuring = measuring


class WrongPathLoad(ProbeEvent):
    """A phantom load was replayed from a mispredicted branch's other outcome."""

    __slots__ = ("index", "pc", "measuring")

    def __init__(self, index, pc, measuring):
        self.index = index
        self.pc = pc
        self.measuring = measuring


class StoreRecorded(ProbeEvent):
    """A store entered the in-flight window; ``record`` is its StoreRecord."""

    __slots__ = ("index", "record", "measuring")

    def __init__(self, index, record, measuring):
        self.index = index
        self.record = record
        self.measuring = measuring


class BranchResolved(ProbeEvent):
    """A branch executed; ``mispredicted`` reflects the front-end predictor."""

    __slots__ = ("index", "pc", "taken", "mispredicted", "measuring")

    def __init__(self, index, pc, taken, mispredicted, measuring):
        self.index = index
        self.pc = pc
        self.taken = taken
        self.mispredicted = mispredicted
        self.measuring = measuring


class LoadCommitted(ProbeEvent):
    """A load retired; ``info`` is the ground-truth LoadCommitInfo."""

    __slots__ = ("index", "info", "measuring")

    def __init__(self, index, info, measuring):
        self.index = index
        self.info = info
        self.measuring = measuring


class OpCommitted(ProbeEvent):
    """A micro-op retired (emitted for every op, warm-up included)."""

    __slots__ = ("index", "kind", "dispatch_cycle", "complete_cycle",
                 "commit_cycle", "measuring")

    def __init__(self, index, kind, dispatch_cycle, complete_cycle,
                 commit_cycle, measuring):
        self.index = index
        self.kind = kind
        self.dispatch_cycle = dispatch_cycle
        self.complete_cycle = complete_cycle
        self.commit_cycle = commit_cycle
        self.measuring = measuring


class IntervalBoundary(ProbeEvent):
    """``interval_ops`` measured micro-ops retired since the last boundary.

    Only emitted when at least one attached probe declares
    :attr:`Probe.interval_ops`; with no interval subscribers the loop never
    even counts ops toward a boundary.
    """

    __slots__ = ("interval_index", "start_op", "end_op", "start_cycle",
                 "end_cycle")

    def __init__(self, interval_index, start_op, end_op, start_cycle, end_cycle):
        self.interval_index = interval_index
        self.start_op = start_op
        self.end_op = end_op
        self.start_cycle = start_cycle
        self.end_cycle = end_cycle


class RunFinished(ProbeEvent):
    """The trace ended; carries everything end-of-run observers need."""

    __slots__ = ("total_ops", "measured_ops", "warmup_ops",
                 "last_commit_cycle", "warmup_end_cycle")

    def __init__(self, total_ops, measured_ops, warmup_ops, last_commit_cycle,
                 warmup_end_cycle):
        self.total_ops = total_ops
        self.measured_ops = measured_ops
        self.warmup_ops = warmup_ops
        self.last_commit_cycle = last_commit_cycle
        self.warmup_end_cycle = warmup_end_cycle


class Probe:
    """Base class for bus subscribers.

    Subclasses override :meth:`subscriptions` to map event types to bound
    handlers. A probe that wants :class:`IntervalBoundary` events must also
    set :attr:`interval_ops` (measured ops per window) — the pipeline only
    tracks boundaries when some attached probe asks for them.
    """

    #: Measured micro-ops per IntervalBoundary, or None for no intervals.
    interval_ops: Optional[int] = None

    def subscriptions(self) -> Mapping[Type[ProbeEvent], Callable]:
        return {}


class ProbeBus:
    """Synchronous typed event bus with a pre-resolved fast path."""

    def __init__(self) -> None:
        self._handlers: Dict[Type[ProbeEvent], List[Callable]] = {}
        self._probes: List[Probe] = []

    def subscribe(self, event_type: Type[ProbeEvent], handler: Callable) -> None:
        """Register one handler for one event type (delivery in order)."""
        self._handlers.setdefault(event_type, []).append(handler)

    def attach(self, probe: Probe) -> Probe:
        """Attach a probe: subscribe every (event type, handler) it declares."""
        for event_type, handler in probe.subscriptions().items():
            self.subscribe(event_type, handler)
        self._probes.append(probe)
        return probe

    @property
    def probes(self) -> List[Probe]:
        return list(self._probes)

    def has_subscribers(self, event_type: Type[ProbeEvent]) -> bool:
        return bool(self._handlers.get(event_type))

    def resolve(self, event_type: Type[ProbeEvent]) -> Optional[Callable]:
        """Pre-resolve one event type to its dispatch function.

        Returns ``None`` when nobody subscribes — the caller skips both the
        event construction and the call — and the single handler itself when
        exactly one subscribes (no fan-out indirection on the hot path).
        """
        handlers = self._handlers.get(event_type)
        if not handlers:
            return None
        if len(handlers) == 1:
            return handlers[0]
        chain = tuple(handlers)

        def fanout(event, _chain=chain):
            for handler in _chain:
                handler(event)

        return fanout

    def interval_hint(self) -> Optional[int]:
        """Smallest interval requested by any attached probe, or None."""
        requested = [
            probe.interval_ops
            for probe in self._probes
            if probe.interval_ops is not None and probe.interval_ops > 0
        ]
        return min(requested) if requested else None
