"""Core configuration, including Table I and the Fig. 2 generation presets.

The paper's headline machine resembles an Intel Alder Lake P-core (Table I):
6-wide front end, 12 execution ports and commit width, 512/204/192/114
ROB/IQ/LQ/SB entries, 3 load + 2 store ports. Figure 2 additionally sweeps
"processor generations" from a Nehalem-like 2008 core up to Alder Lake to show
the growing MDP gap; :data:`GENERATIONS` provides that ladder.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping

from repro.isa.microop import OpKind
from repro.memory.hierarchy import HierarchyConfig


_DEFAULT_LATENCIES: Mapping[OpKind, int] = {
    OpKind.ALU: 1,
    OpKind.MUL: 4,
    OpKind.DIV: 20,
    OpKind.FP: 4,
    OpKind.BRANCH: 1,
    OpKind.NOP: 1,
    # LOAD/STORE latency comes from the memory hierarchy / LSQ.
}

_DEFAULT_PORTS: Mapping[OpKind, int] = {
    # Alder Lake-like distribution over 12 execution ports:
    # 4 scalar ALU (branches share them), 1 mul, 1 div, 2 FP/vector,
    # 3 load AGU+data, 2 store (address) — totalling 12 issue slots, with
    # ALU/branch sharing modelled by a merged pool.
    OpKind.ALU: 4,
    OpKind.MUL: 1,
    OpKind.DIV: 1,
    OpKind.FP: 2,
    OpKind.BRANCH: 2,
    OpKind.LOAD: 3,
    OpKind.STORE: 2,
    OpKind.NOP: 4,
}


@dataclass(frozen=True)
class CoreConfig:
    """All knobs of the timing model. Defaults reproduce Table I."""

    name: str = "alderlake"
    year: int = 2021
    dispatch_width: int = 6
    commit_width: int = 12
    rob_entries: int = 512
    iq_entries: int = 204
    lq_entries: int = 192
    sq_entries: int = 114  # unified SQ + store buffer window (Table I "SB")
    dispatch_to_issue_latency: int = 6  # decode/rename/alloc depth
    branch_redirect_penalty: int = 14  # eager squash + front-end refill
    violation_penalty: int = 14  # lazy squash at commit + refill
    store_drain_per_cycle: int = 2  # SB -> L1D write ports
    latencies: Mapping[OpKind, int] = field(default_factory=lambda: dict(_DEFAULT_LATENCIES))
    ports: Mapping[OpKind, int] = field(default_factory=lambda: dict(_DEFAULT_PORTS))
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    forwarding_filter: bool = True  # Sec. IV-A1 FWD optimisation
    #: "lazy" squashes memory-order violations at the load's commit (the
    #: paper's configuration, Sec. V); "eager" squashes as soon as the
    #: conflicting store resolves its address and detects the violation.
    violation_squash: str = "lazy"
    #: Wrong-path modelling depth: after a branch misprediction, up to this
    #: many micro-ops from the branch's *other* outcome are replayed as
    #: phantoms — they touch the caches and query (and, for predictors that
    #: train at detection, can mis-train) the memory dependence predictor,
    #: Scarab-style (Sec. V). 0 disables wrong-path modelling (the default:
    #: the headline reproduction accounts for wrong-path cost via penalties).
    wrong_path_depth: int = 0
    num_arch_regs: int = 512

    def __post_init__(self) -> None:
        if self.dispatch_width <= 0 or self.commit_width <= 0:
            raise ValueError("widths must be positive")
        if min(self.rob_entries, self.iq_entries, self.lq_entries, self.sq_entries) <= 0:
            raise ValueError("queue sizes must be positive")
        if self.violation_squash not in ("lazy", "eager"):
            raise ValueError(
                f"violation_squash must be 'lazy' or 'eager', got {self.violation_squash!r}"
            )
        if self.wrong_path_depth < 0:
            raise ValueError(
                f"wrong_path_depth must be >= 0, got {self.wrong_path_depth}"
            )
        for kind in OpKind:
            if kind not in self.ports and kind not in (OpKind.LOAD, OpKind.STORE):
                raise ValueError(f"missing port count for {kind}")

    def latency_of(self, kind: OpKind) -> int:
        return self.latencies[kind]

    def with_forwarding_filter(self, enabled: bool) -> "CoreConfig":
        return replace(self, forwarding_filter=enabled)

    def with_violation_squash(self, mode: str) -> "CoreConfig":
        return replace(self, violation_squash=mode)

    def with_wrong_path(self, depth: int) -> "CoreConfig":
        return replace(self, wrong_path_depth=depth)


def _generation(
    name: str,
    year: int,
    dispatch: int,
    commit: int,
    rob: int,
    iq: int,
    lq: int,
    sq: int,
    load_ports: int,
    store_ports: int,
    alu_ports: int,
    hierarchy: HierarchyConfig,
) -> CoreConfig:
    ports = dict(_DEFAULT_PORTS)
    ports[OpKind.LOAD] = load_ports
    ports[OpKind.STORE] = store_ports
    ports[OpKind.ALU] = alu_ports
    ports[OpKind.NOP] = alu_ports
    ports[OpKind.BRANCH] = max(1, alu_ports // 2)
    return CoreConfig(
        name=name,
        year=year,
        dispatch_width=dispatch,
        commit_width=commit,
        rob_entries=rob,
        iq_entries=iq,
        lq_entries=lq,
        sq_entries=sq,
        ports=ports,
        hierarchy=hierarchy,
    )


def _make_generations() -> Dict[str, CoreConfig]:
    """Fig. 2's ladder of successively larger out-of-order machines.

    Parameters follow the public microarchitecture record for each family:
    the point is the monotone growth of width and of the speculation window
    (ROB/LQ/SQ), which is what drives MDP MPKI up over generations.
    """
    nehalem_caches = HierarchyConfig.nehalem_like()
    generations = {
        "nehalem": _generation(
            "nehalem", 2008, 4, 4, 128, 36, 48, 32, 1, 1, 3, nehalem_caches
        ),
        "sandybridge": _generation(
            "sandybridge", 2011, 4, 4, 168, 54, 64, 36, 2, 1, 3, nehalem_caches
        ),
        "haswell": _generation(
            "haswell", 2013, 4, 4, 192, 60, 72, 42, 2, 1, 4, nehalem_caches
        ),
        "skylake": _generation(
            "skylake", 2015, 5, 4, 224, 97, 72, 56, 2, 1, 4, HierarchyConfig()
        ),
        "sunnycove": _generation(
            "sunnycove", 2019, 5, 8, 352, 160, 128, 72, 2, 2, 4, HierarchyConfig()
        ),
        "alderlake": CoreConfig(),
    }
    return generations


GENERATIONS: Dict[str, CoreConfig] = _make_generations()
