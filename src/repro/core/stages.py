"""Pipeline stage components: dispatch, issue, memory, store, branch, commit.

Each stage is a small object operating on the shared
:class:`~repro.core.context.SimContext`; ``Pipeline.run`` wires them
together per trace. Stages do the *scheduling* (cycle assignment) and emit
:mod:`repro.core.probes` events at the same sequence points where the
monolithic loop used to mutate statistics or call the invariant checker —
observation is entirely the subscribers' business.

Semantics are bit-identical to the pre-split loop; the headline benchmarks
(`benchmarks/test_headline_results.py`) and the committed perf baseline
(`benchmarks/perf_smoke.py`) guard that equivalence.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.context import SimContext
from repro.core.lsq import ForwardKind, StoreRecord, multi_store_suppliers, resolve_load
from repro.core.probes import (
    BranchResolved,
    DependencePredicted,
    IntervalBoundary,
    LoadCommitted,
    LoadResolved,
    MultiStoreLoad,
    OpCommitted,
    OpDispatched,
    Squash,
    StoreRecorded,
    Violation,
    WrongPathLoad,
)
from repro.isa.microop import MicroOp, OpKind
from repro.mdp.base import (
    LoadCommitInfo,
    LoadDispatchInfo,
    StoreDispatchInfo,
    ViolationInfo,
)


class DispatchStage:
    """Fetch + dispatch: claims the op's dispatch slot under structural limits."""

    __slots__ = ("ctx",)

    def __init__(self, ctx: SimContext) -> None:
        self.ctx = ctx

    def process(
        self, op: MicroOp, index: int, kind: OpKind, measuring: bool
    ) -> Tuple[int, int, int]:
        """Returns ``(dispatch_cycle, ready_to_issue, history_snapshot)``."""
        ctx = self.ctx
        rob_free = ctx.commit_ring[index % ctx.rob]
        iq_free = ctx.issue_ring[index % ctx.iq]
        earliest = ctx.frontend_ready
        if rob_free > earliest:
            earliest = rob_free
        if iq_free > earliest:
            earliest = iq_free
        fetch_line = op.pc >> 6
        if fetch_line != ctx.last_fetch_line:
            ctx.last_fetch_line = fetch_line
            fetched = ctx.hierarchy.fetch_access(op.pc, earliest)
            if fetched > earliest:
                earliest = fetched
        slot_free = 0
        if kind is OpKind.LOAD:
            slot_free = ctx.load_ring[ctx.load_count % ctx.lq]
            if slot_free > earliest:
                earliest = slot_free
        elif kind is OpKind.STORE:
            slot_free = ctx.store_ring[ctx.store_count % ctx.sq]
            if slot_free > earliest:
                earliest = slot_free
        dispatch_cycle = ctx.dispatch.allocate(earliest)
        emit = ctx.emit_dispatched
        if emit is not None:
            emit(
                OpDispatched(
                    index, kind, dispatch_cycle, rob_free, iq_free, slot_free,
                    measuring,
                )
            )
        snapshot = ctx.history.snapshot()

        reg_ready = ctx.reg_ready
        operands = 0
        for reg in op.src_regs:
            ready = reg_ready[reg]
            if ready > operands:
                operands = ready
        ready_to_issue = dispatch_cycle + ctx.d2i
        if operands > ready_to_issue:
            ready_to_issue = operands
        return dispatch_cycle, ready_to_issue, snapshot


class IssueStage:
    """Execution-port arbitration: books issue slots per port class."""

    __slots__ = ("ports",)

    def __init__(self, ctx: SimContext) -> None:
        self.ports = ctx.ports

    def port(self, kind: OpKind):
        return self.ports[kind]

    def allocate(self, kind: OpKind, ready: int, busy_cycles: int = 1) -> int:
        return self.ports[kind].allocate(ready, busy_cycles)


class SquashUnit:
    """Computes squash/replay timing for a mis-speculated load."""

    __slots__ = ("ctx",)

    def __init__(self, ctx: SimContext) -> None:
        self.ctx = ctx

    def squash(
        self,
        index: int,
        pc: int,
        exec_cycle: int,
        commit_cycle: int,
        attempt_dispatch: int,
        ready_to_issue: int,
        training_store: StoreRecord,
        measuring: bool,
    ) -> Tuple[int, int]:
        """Squash one load attempt; returns the replay's (dispatch, ready)."""
        ctx = self.ctx
        config = ctx.config
        if config.violation_squash == "eager":
            # Squash as soon as the conflicting store resolves and finds
            # the mis-speculated load in the LQ.
            detection_cycle = max(exec_cycle, training_store.addr_ready)
            squash_cycle = detection_cycle + config.violation_penalty
        else:
            squash_cycle = commit_cycle + config.violation_penalty
        replay_dispatch = ctx.dispatch.allocate(squash_cycle)
        emit = ctx.emit_squash
        if emit is not None:
            emit(
                Squash(
                    index, pc, squash_cycle, attempt_dispatch, replay_dispatch,
                    measuring,
                )
            )
        replay_ready = max(replay_dispatch + ctx.d2i, ready_to_issue)
        return replay_dispatch, replay_ready


class MemoryStage:
    """Loads: disambiguation, MDP wait edges, violation squash + replay."""

    __slots__ = ("ctx", "issue_stage", "squash_unit")

    def __init__(
        self, ctx: SimContext, issue_stage: IssueStage, squash_unit: SquashUnit
    ) -> None:
        self.ctx = ctx
        self.issue_stage = issue_stage
        self.squash_unit = squash_unit

    def process(
        self,
        op: MicroOp,
        index: int,
        dispatch_cycle: int,
        ready_to_issue: int,
        snapshot: int,
        measuring: bool,
    ) -> Tuple[int, int, int]:
        """Process one load, including violation squash + replay.

        Returns ``(issue, complete, commit_cycle)`` of the final (committing)
        execution.
        """
        ctx = self.ctx
        predictor = ctx.predictor
        history = ctx.history
        window = ctx.window
        load_ports = self.issue_stage.ports[OpKind.LOAD]
        commit = ctx.commit
        checker = ctx.checker
        l1d_latency = ctx.l1d_latency
        fwd_filter = ctx.fwd_filter
        store_count = ctx.store_count
        mem = op.mem
        candidates = window.candidates(mem.address, mem.size)

        # Oracle ground truth for the ideal predictor and for commit feedback:
        # youngest older store still in flight at the load's unconstrained
        # execute estimate.
        naive_exec = ready_to_issue + 1
        oracle_store = None
        oracle_multi = False
        visible = [s for s in candidates if s.drain_cycle > naive_exec]
        if visible:
            oracle_store = visible[-1]
            if len(visible) > 1:
                suppliers = multi_store_suppliers(visible, mem.address, mem.size)
                oracle_multi = len(suppliers) >= 2
                if oracle_multi and (ctx.emit_multi_store is not None):
                    # Fig. 4's second metric: do the load's writers execute
                    # in (program) order? Measured over the suppliers only.
                    execs = [s.exec_cycle for s in suppliers]
                    ctx.emit_multi_store(
                        MultiStoreLoad(index, op.pc, execs == sorted(execs), measuring)
                    )

        was_violated = False
        attempt_dispatch = dispatch_cycle
        attempt_ready = ready_to_issue
        while True:
            prediction = predictor.on_load_dispatch(
                LoadDispatchInfo(
                    pc=op.pc,
                    seq=index,
                    hist_snapshot=snapshot,
                    store_count=store_count,
                    history=history,
                    oracle_store_number=(
                        oracle_store.store_number if oracle_store else None
                    ),
                    oracle_multi_store=oracle_multi,
                )
            )

            # A predicted-dependent load delays issue just long enough to
            # execute after the store's *address* resolves (Sec. I: "the load
            # waits at the issue stage until the conflicting store computes
            # its target address"); forwarding then supplies the data, and
            # the LSQ timing accounts for late store data itself.
            wait_targets = []
            issue_ready = attempt_ready
            if prediction.is_dependence:
                if prediction.wait_all_older:
                    for record in window.all_records():
                        issue_ready = max(issue_ready, record.addr_ready - 1)
                        wait_targets.append(record)
                for distance in prediction.distances:
                    target = window.by_number(store_count - 1 - distance)
                    if target is not None:
                        issue_ready = max(issue_ready, target.addr_ready - 1)
                        wait_targets.append(target)
                for seq in prediction.store_seqs:
                    record = window.by_seq(seq)
                    if record is not None:
                        issue_ready = max(issue_ready, record.addr_ready - 1)
                        wait_targets.append(record)
                if ctx.emit_dep_predicted is not None:
                    ctx.emit_dep_predicted(
                        DependencePredicted(
                            index, op.pc, prediction, tuple(wait_targets), measuring
                        )
                    )

            issue = load_ports.allocate(issue_ready)
            exec_cycle = issue + 1  # AGU
            resolution = resolve_load(
                candidates,
                mem.address,
                mem.size,
                exec_cycle,
                l1d_latency,
                fwd_filter,
                checker=checker,
            )
            if resolution.kind is ForwardKind.CACHE:
                complete = ctx.hierarchy.load_access(op.pc, mem.address, exec_cycle)
            else:
                complete = resolution.data_ready
            if ctx.emit_load_resolved is not None:
                ctx.emit_load_resolved(
                    LoadResolved(index, op.pc, resolution, exec_cycle, complete,
                                 measuring)
                )

            commit_cycle = commit.allocate(max(complete + 1, 0))

            if not resolution.violated:
                break

            # ---- memory-order violation: lazy squash at commit, then replay --
            was_violated = True
            training_store = (
                resolution.violation_store_commit
                if predictor.trains_at_commit
                else resolution.violation_store_detect
            )
            info = ViolationInfo(
                load_pc=op.pc,
                load_seq=index,
                load_snapshot=snapshot,
                load_store_count=store_count,
                store_pc=training_store.pc,
                store_seq=training_store.seq,
                store_snapshot=training_store.hist_snapshot,
                store_number=training_store.store_number,
                history=history,
            )
            if ctx.emit_violation is not None:
                ctx.emit_violation(Violation(index, op.pc, info, False, measuring))
            attempt_dispatch, attempt_ready = self.squash_unit.squash(
                index,
                op.pc,
                exec_cycle,
                commit_cycle,
                attempt_dispatch,
                ready_to_issue,
                training_store,
                measuring,
            )

        # ---- commit-time feedback -------------------------------------------
        # Ground truth is the oracle dependence (youngest conflicting store at
        # the load's unconstrained execute estimate), not the post-wait window:
        # a correctly-waited load whose forwarder drained into the cache during
        # the wait still waited for the right store.
        actual = (
            resolution.true_store if resolution.true_store is not None else oracle_store
        )
        delayed = issue_ready > attempt_ready if prediction.is_dependence else False
        waited_correct = (
            prediction.is_dependence
            and actual is not None
            and any(target.seq == actual.seq for target in wait_targets)
        )
        false_positive = prediction.is_dependence and delayed and not waited_correct
        predicted_number = wait_targets[0].store_number if wait_targets else None
        if ctx.emit_load_committed is not None:
            ctx.emit_load_committed(
                LoadCommitted(
                    index,
                    LoadCommitInfo(
                        pc=op.pc,
                        seq=index,
                        hist_snapshot=snapshot,
                        store_count=store_count,
                        prediction=prediction,
                        predicted_store_number=predicted_number,
                        actual_store_number=actual.store_number if actual else None,
                        waited_correct=waited_correct,
                        false_positive=false_positive,
                        violated=was_violated,
                        history=history,
                    ),
                    measuring,
                )
            )

        ctx.load_ring[ctx.load_count % ctx.lq] = commit_cycle
        ctx.load_count += 1
        if op.dst_reg is not None:
            ctx.reg_ready[op.dst_reg] = complete
        return issue, complete, commit_cycle

    # -------------------------------------------------------- wrong path --

    def run_wrong_path(
        self, start_index: int, depth: int, cycle: int, measuring: bool
    ) -> None:
        """Replay ops from the branch's other outcome as phantoms.

        Phantom loads touch the caches (pollution and accidental prefetch)
        and query the memory dependence predictor; when one conflicts with an
        in-flight store, predictors that train *at detection* learn the
        wrong-path dependence — exactly the pollution the paper says PHAST's
        at-commit training avoids (Sec. IV-A1). Phantoms never commit, write,
        or enter the branch history (it is repaired on squash).
        """
        ctx = self.ctx
        predictor = ctx.predictor
        trace = ctx.trace
        window = ctx.window
        store_count = ctx.store_count
        end = min(len(trace), start_index + depth)
        for phantom_index in range(start_index, end):
            op = trace[phantom_index]
            # Branches on the wrong path follow whatever the recorded
            # occurrence did (the front end keeps predicting); only loads
            # have observable side effects here.
            if not op.is_load:
                continue
            mem = op.mem
            ctx.hierarchy.load_access(op.pc, mem.address, cycle)
            predictor.on_load_dispatch(
                LoadDispatchInfo(
                    pc=op.pc,
                    seq=-phantom_index - 1,  # phantom ids never collide
                    hist_snapshot=ctx.history.snapshot(),
                    store_count=store_count,
                    history=ctx.history,
                )
            )
            if ctx.emit_wrong_path_load is not None:
                ctx.emit_wrong_path_load(WrongPathLoad(phantom_index, op.pc, measuring))
            if predictor.trains_at_commit:
                continue  # squashed before commit: never trained (PHAST)
            candidates = window.candidates(mem.address, mem.size)
            resolution = resolve_load(
                candidates,
                mem.address,
                mem.size,
                cycle,
                ctx.l1d_latency,
                ctx.fwd_filter,
                checker=ctx.checker,
            )
            if resolution.violated:
                training_store = resolution.violation_store_detect
                info = ViolationInfo(
                    load_pc=op.pc,
                    load_seq=-phantom_index - 1,
                    load_snapshot=ctx.history.snapshot(),
                    load_store_count=store_count,
                    store_pc=training_store.pc,
                    store_seq=training_store.seq,
                    store_snapshot=training_store.hist_snapshot,
                    store_number=training_store.store_number,
                    history=ctx.history,
                )
                if ctx.emit_violation is not None:
                    ctx.emit_violation(
                        Violation(phantom_index, op.pc, info, True, measuring)
                    )


class StoreStage:
    """Stores: AGU scheduling, Store Sets serialisation, window insertion."""

    __slots__ = ("ctx", "store_ports")

    def __init__(self, ctx: SimContext, issue_stage: IssueStage) -> None:
        self.ctx = ctx
        self.store_ports = issue_stage.port(OpKind.STORE)

    def process(
        self,
        op: MicroOp,
        index: int,
        dispatch_cycle: int,
        ready_to_issue: int,
        snapshot: int,
        measuring: bool,
    ) -> Tuple[int, int, int]:
        ctx = self.ctx
        reg_ready = ctx.reg_ready
        window = ctx.window
        store_count = ctx.store_count
        data_operands = 0
        for reg in op.store_data_regs:
            ready = reg_ready[reg]
            if ready > data_operands:
                data_operands = ready
        store_pred = ctx.predictor.on_store_dispatch(
            StoreDispatchInfo(
                pc=op.pc,
                seq=index,
                hist_snapshot=snapshot,
                store_number=store_count,
                history=ctx.history,
            )
        )
        agu_ready = ready_to_issue
        exec_floor = max(dispatch_cycle + ctx.d2i, data_operands)
        if store_pred.is_dependence:
            # Store Sets serialises stores of a set: this store may not
            # execute before the previous store of its set.
            for dep_seq in store_pred.store_seqs:
                record = window.by_seq(dep_seq)
                if record is not None:
                    agu_ready = max(agu_ready, record.exec_cycle + 1)
        issue = self.store_ports.allocate(agu_ready)
        addr_ready = issue + 1
        complete = max(addr_ready, exec_floor)
        commit_cycle = ctx.commit.allocate(max(complete + 1, ctx.last_commit))
        drain_cycle = ctx.drain.allocate(commit_cycle + 1)
        record = StoreRecord(
            seq=index,
            pc=op.pc,
            address=op.mem.address,
            size=op.mem.size,
            store_number=store_count,
            addr_ready=addr_ready,
            exec_cycle=complete,
            drain_cycle=drain_cycle,
            hist_snapshot=snapshot,
        )
        if ctx.emit_store_recorded is not None:
            ctx.emit_store_recorded(StoreRecorded(index, record, measuring))
        window.append(record)
        ctx.store_ring[store_count % ctx.sq] = drain_cycle
        ctx.store_count += 1
        return issue, complete, commit_cycle


class BranchStage:
    """Branches: front-end prediction, redirects, wrong-path replay."""

    __slots__ = ("ctx", "memory_stage", "branch_ports", "latency",
                 "redirect_penalty")

    def __init__(
        self, ctx: SimContext, issue_stage: IssueStage, memory_stage: MemoryStage
    ) -> None:
        self.ctx = ctx
        self.memory_stage = memory_stage
        self.branch_ports = issue_stage.port(OpKind.BRANCH)
        self.latency = ctx.config.latencies[OpKind.BRANCH]
        self.redirect_penalty = ctx.config.branch_redirect_penalty

    def process(
        self,
        op: MicroOp,
        index: int,
        dispatch_cycle: int,
        ready_to_issue: int,
        measuring: bool,
    ) -> Tuple[int, int, int]:
        ctx = self.ctx
        issue = self.branch_ports.allocate(ready_to_issue)
        complete = issue + self.latency
        branch = op.branch
        mispredicted = ctx.branch_predictor.observe(
            op.pc, branch.kind, branch.taken, branch.target
        )
        if ctx.emit_branch_resolved is not None:
            ctx.emit_branch_resolved(
                BranchResolved(index, op.pc, branch.taken, mispredicted, measuring)
            )
        wrong_path_depth = ctx.wrong_path_depth
        if mispredicted:
            redirect = complete + self.redirect_penalty
            if redirect > ctx.frontend_ready:
                ctx.frontend_ready = redirect
            if wrong_path_depth:
                wrong_index = ctx.wrong_path_after.get((op.pc, not branch.taken))
                if wrong_index is not None:
                    self.memory_stage.run_wrong_path(
                        wrong_index, wrong_path_depth, dispatch_cycle, measuring
                    )
        if wrong_path_depth:
            ctx.wrong_path_after.setdefault((op.pc, branch.taken), index + 1)
        ctx.history.record(op.pc, branch)
        commit_cycle = ctx.commit.allocate(max(complete + 1, ctx.last_commit))
        return issue, complete, commit_cycle


class ExecuteStage:
    """ALU / MUL / DIV / FP / NOP: fixed-latency execution."""

    __slots__ = ("ctx", "issue_stage", "latencies")

    def __init__(self, ctx: SimContext, issue_stage: IssueStage) -> None:
        self.ctx = ctx
        self.issue_stage = issue_stage
        self.latencies = ctx.config.latencies

    def process(
        self, op: MicroOp, kind: OpKind, dispatch_cycle: int, ready_to_issue: int
    ) -> Tuple[int, int, int]:
        ctx = self.ctx
        latency = self.latencies[kind]
        busy = latency if kind is OpKind.DIV else 1  # DIV unpipelined
        issue = self.issue_stage.ports[kind].allocate(ready_to_issue, busy_cycles=busy)
        complete = issue + latency
        if op.dst_reg is not None:
            ctx.reg_ready[op.dst_reg] = complete
        commit_cycle = ctx.commit.allocate(max(complete + 1, ctx.last_commit))
        return issue, complete, commit_cycle


class CommitStage:
    """Retire bookkeeping: rings, retirement watermark, interval boundaries."""

    __slots__ = ("ctx",)

    def __init__(self, ctx: SimContext) -> None:
        self.ctx = ctx

    def retire(
        self,
        index: int,
        kind: OpKind,
        dispatch_cycle: int,
        issue: int,
        complete: int,
        commit_cycle: int,
        measuring: bool,
    ) -> None:
        ctx = self.ctx
        ctx.commit_ring[index % ctx.rob] = commit_cycle
        ctx.issue_ring[index % ctx.iq] = issue
        if commit_cycle > ctx.last_commit:
            ctx.last_commit = commit_cycle
        emit = ctx.emit_op_committed
        if emit is not None:
            emit(
                OpCommitted(
                    index, kind, dispatch_cycle, complete, commit_cycle, measuring
                )
            )
        if measuring:
            if ctx.emit_interval is not None:
                ctx.interval_op_count += 1
                if ctx.interval_op_count >= ctx.interval_ops:
                    end_cycle = ctx.last_commit
                    ctx.emit_interval(
                        IntervalBoundary(
                            ctx.interval_index,
                            ctx.interval_start_op,
                            index,
                            ctx.interval_start_cycle,
                            end_cycle,
                        )
                    )
                    ctx.interval_index += 1
                    ctx.interval_op_count = 0
                    ctx.interval_start_cycle = end_cycle
                    ctx.interval_start_op = index + 1
        elif index == ctx.warmup_ops - 1:
            ctx.warmup_end_cycle = ctx.last_commit
            ctx.interval_start_cycle = ctx.last_commit
