"""Pipeline stage components: dispatch, issue, memory, store, branch, commit.

Each stage is a small object operating on the shared
:class:`~repro.core.context.SimContext`; ``Pipeline.run`` wires them
together per trace. Stages do the *scheduling* (cycle assignment) and emit
:mod:`repro.core.probes` events at the same sequence points where the
monolithic loop used to mutate statistics or call the invariant checker —
observation is entirely the subscribers' business.

Hot-path discipline: everything that is constant for one run — config
scalars, ring buffers, the store window, the predictor hooks, the
pre-resolved probe emitters (``SimContext.bind`` runs before stages are
constructed) — is snapshotted into stage attributes at construction, so the
per-op code reads locals and slot attributes instead of chasing
``self.ctx.x.y`` chains. Only genuinely mutable scalars (cycle watermarks,
op counters, interval cursors) are read through ``ctx``.

The per-load and per-store predictor hand-off reuses a single mutable
:class:`~repro.mdp.base.LoadDispatchInfo` / ``StoreDispatchInfo`` record
instead of allocating one per op — the records are documented transient
(see :mod:`repro.mdp.base`): predictors must read them synchronously and
never retain them. ``ViolationInfo``/``LoadCommitInfo`` ride on probe-bus
events that arbitrary subscribers may keep, so those are still allocated
fresh.

Semantics are bit-identical to the pre-split loop; the golden fixture
(`tests/core/test_hot_path_identity.py`), the headline benchmarks
(`benchmarks/test_headline_results.py`) and the committed perf baseline
(`benchmarks/perf_smoke.py`) guard that equivalence.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.context import SimContext
from repro.core.lsq import ForwardKind, StoreRecord, multi_store_suppliers, resolve_load
from repro.core.probes import (
    BranchResolved,
    DependencePredicted,
    IntervalBoundary,
    LoadCommitted,
    LoadResolved,
    MultiStoreLoad,
    OpCommitted,
    OpDispatched,
    Squash,
    StoreRecorded,
    Violation,
    WrongPathLoad,
)
from repro.isa.microop import MicroOp, OpKind
from repro.mdp.base import (
    LoadCommitInfo,
    LoadDispatchInfo,
    StoreDispatchInfo,
    ViolationInfo,
)


class DispatchStage:
    """Fetch + dispatch: claims the op's dispatch slot under structural limits."""

    __slots__ = (
        "ctx",
        "commit_ring",
        "issue_ring",
        "load_ring",
        "store_ring",
        "rob",
        "iq",
        "lq",
        "sq",
        "d2i",
        "reg_ready",
        "allocate_dispatch",
        "fetch_access",
        "snapshot_of",
        "emit_dispatched",
    )

    def __init__(self, ctx: SimContext) -> None:
        self.ctx = ctx
        self.commit_ring = ctx.commit_ring
        self.issue_ring = ctx.issue_ring
        self.load_ring = ctx.load_ring
        self.store_ring = ctx.store_ring
        self.rob = ctx.rob
        self.iq = ctx.iq
        self.lq = ctx.lq
        self.sq = ctx.sq
        self.d2i = ctx.d2i
        self.reg_ready = ctx.reg_ready
        self.allocate_dispatch = ctx.dispatch.allocate
        self.fetch_access = ctx.hierarchy.fetch_access
        self.snapshot_of = ctx.history.snapshot
        self.emit_dispatched = ctx.emit_dispatched

    def process(
        self, op: MicroOp, index: int, kind: OpKind, measuring: bool
    ) -> Tuple[int, int, int]:
        """Returns ``(dispatch_cycle, ready_to_issue, history_snapshot)``."""
        ctx = self.ctx
        rob_free = self.commit_ring[index % self.rob]
        iq_free = self.issue_ring[index % self.iq]
        earliest = ctx.frontend_ready
        if rob_free > earliest:
            earliest = rob_free
        if iq_free > earliest:
            earliest = iq_free
        fetch_line = op.pc >> 6
        if fetch_line != ctx.last_fetch_line:
            ctx.last_fetch_line = fetch_line
            fetched = self.fetch_access(op.pc, earliest)
            if fetched > earliest:
                earliest = fetched
        slot_free = 0
        if kind is OpKind.LOAD:
            slot_free = self.load_ring[ctx.load_count % self.lq]
            if slot_free > earliest:
                earliest = slot_free
        elif kind is OpKind.STORE:
            slot_free = self.store_ring[ctx.store_count % self.sq]
            if slot_free > earliest:
                earliest = slot_free
        dispatch_cycle = self.allocate_dispatch(earliest)
        emit = self.emit_dispatched
        if emit is not None:
            emit(
                OpDispatched(
                    index, kind, dispatch_cycle, rob_free, iq_free, slot_free,
                    measuring,
                )
            )
        snapshot = self.snapshot_of()

        reg_ready = self.reg_ready
        operands = 0
        for reg in op.src_regs:
            ready = reg_ready[reg]
            if ready > operands:
                operands = ready
        ready_to_issue = dispatch_cycle + self.d2i
        if operands > ready_to_issue:
            ready_to_issue = operands
        return dispatch_cycle, ready_to_issue, snapshot


class IssueStage:
    """Execution-port arbitration: books issue slots per port class."""

    __slots__ = ("ports",)

    def __init__(self, ctx: SimContext) -> None:
        self.ports = ctx.ports

    def port(self, kind: OpKind):
        return self.ports[kind]

    def allocate(self, kind: OpKind, ready: int, busy_cycles: int = 1) -> int:
        return self.ports[kind].allocate(ready, busy_cycles)


class SquashUnit:
    """Computes squash/replay timing for a mis-speculated load."""

    __slots__ = ("ctx", "d2i", "eager", "violation_penalty", "allocate_dispatch",
                 "emit_squash")

    def __init__(self, ctx: SimContext) -> None:
        self.ctx = ctx
        self.d2i = ctx.d2i
        self.eager = ctx.config.violation_squash == "eager"
        self.violation_penalty = ctx.config.violation_penalty
        self.allocate_dispatch = ctx.dispatch.allocate
        self.emit_squash = ctx.emit_squash

    def squash(
        self,
        index: int,
        pc: int,
        exec_cycle: int,
        commit_cycle: int,
        attempt_dispatch: int,
        ready_to_issue: int,
        training_store: StoreRecord,
        measuring: bool,
    ) -> Tuple[int, int]:
        """Squash one load attempt; returns the replay's (dispatch, ready)."""
        if self.eager:
            # Squash as soon as the conflicting store resolves and finds
            # the mis-speculated load in the LQ.
            detection_cycle = max(exec_cycle, training_store.addr_ready)
            squash_cycle = detection_cycle + self.violation_penalty
        else:
            squash_cycle = commit_cycle + self.violation_penalty
        replay_dispatch = self.allocate_dispatch(squash_cycle)
        emit = self.emit_squash
        if emit is not None:
            emit(
                Squash(
                    index, pc, squash_cycle, attempt_dispatch, replay_dispatch,
                    measuring,
                )
            )
        replay_ready = max(replay_dispatch + self.d2i, ready_to_issue)
        return replay_dispatch, replay_ready


class MemoryStage:
    """Loads: disambiguation, MDP wait edges, violation squash + replay."""

    __slots__ = (
        "ctx",
        "squash_unit",
        "history",
        "window",
        "candidates_of",
        "window_by_number",
        "window_by_seq",
        "predict_load",
        "trains_at_commit",
        "allocate_load_port",
        "allocate_commit",
        "load_access",
        "checker",
        "l1d_latency",
        "fwd_filter",
        "lq",
        "load_ring",
        "reg_ready",
        "dispatch_info",
        "emit_multi_store",
        "emit_dep_predicted",
        "emit_load_resolved",
        "emit_violation",
        "emit_load_committed",
        "emit_wrong_path_load",
    )

    def __init__(
        self, ctx: SimContext, issue_stage: IssueStage, squash_unit: SquashUnit
    ) -> None:
        self.ctx = ctx
        self.squash_unit = squash_unit
        self.history = ctx.history
        self.window = ctx.window
        self.candidates_of = ctx.window.candidates
        self.window_by_number = ctx.window.by_number
        self.window_by_seq = ctx.window.by_seq
        self.predict_load = ctx.predictor.on_load_dispatch
        self.trains_at_commit = ctx.predictor.trains_at_commit
        self.allocate_load_port = issue_stage.ports[OpKind.LOAD].allocate
        self.allocate_commit = ctx.commit.allocate
        self.load_access = ctx.hierarchy.load_access
        self.checker = ctx.checker
        self.l1d_latency = ctx.l1d_latency
        self.fwd_filter = ctx.fwd_filter
        self.lq = ctx.lq
        self.load_ring = ctx.load_ring
        self.reg_ready = ctx.reg_ready
        # The reusable per-load predictor hand-off record (see module doc).
        self.dispatch_info = LoadDispatchInfo(
            pc=0, seq=0, hist_snapshot=0, store_count=0, history=ctx.history
        )
        self.emit_multi_store = ctx.emit_multi_store
        self.emit_dep_predicted = ctx.emit_dep_predicted
        self.emit_load_resolved = ctx.emit_load_resolved
        self.emit_violation = ctx.emit_violation
        self.emit_load_committed = ctx.emit_load_committed
        self.emit_wrong_path_load = ctx.emit_wrong_path_load

    def process(
        self,
        op: MicroOp,
        index: int,
        dispatch_cycle: int,
        ready_to_issue: int,
        snapshot: int,
        measuring: bool,
    ) -> Tuple[int, int, int]:
        """Process one load, including violation squash + replay.

        Returns ``(issue, complete, commit_cycle)`` of the final (committing)
        execution.
        """
        ctx = self.ctx
        history = self.history
        checker = self.checker
        l1d_latency = self.l1d_latency
        fwd_filter = self.fwd_filter
        store_count = ctx.store_count
        pc = op.pc
        mem = op.mem
        address = mem.address
        size = mem.size
        candidates = self.candidates_of(address, size)

        # Oracle ground truth for the ideal predictor and for commit feedback:
        # youngest older store still in flight at the load's unconstrained
        # execute estimate.
        oracle_store = None
        oracle_multi = False
        if candidates:
            naive_exec = ready_to_issue + 1
            visible = [s for s in candidates if s.drain_cycle > naive_exec]
            if visible:
                oracle_store = visible[-1]
                if len(visible) > 1:
                    suppliers = multi_store_suppliers(visible, address, size)
                    oracle_multi = len(suppliers) >= 2
                    if oracle_multi and (self.emit_multi_store is not None):
                        # Fig. 4's second metric: do the load's writers execute
                        # in (program) order? Measured over the suppliers only.
                        execs = [s.exec_cycle for s in suppliers]
                        self.emit_multi_store(
                            MultiStoreLoad(index, pc, execs == sorted(execs), measuring)
                        )

        info = self.dispatch_info
        info.pc = pc
        info.seq = index
        info.hist_snapshot = snapshot
        info.store_count = store_count
        info.oracle_store_number = (
            oracle_store.store_number if oracle_store is not None else None
        )
        info.oracle_multi_store = oracle_multi

        was_violated = False
        attempt_dispatch = dispatch_cycle
        attempt_ready = ready_to_issue
        while True:
            prediction = self.predict_load(info)

            # A predicted-dependent load delays issue just long enough to
            # execute after the store's *address* resolves (Sec. I: "the load
            # waits at the issue stage until the conflicting store computes
            # its target address"); forwarding then supplies the data, and
            # the LSQ timing accounts for late store data itself.
            wait_targets = []
            issue_ready = attempt_ready
            if prediction.is_dependence:
                if prediction.wait_all_older:
                    for record in self.window.all_records():
                        issue_ready = max(issue_ready, record.addr_ready - 1)
                        wait_targets.append(record)
                for distance in prediction.distances:
                    target = self.window_by_number(store_count - 1 - distance)
                    if target is not None:
                        issue_ready = max(issue_ready, target.addr_ready - 1)
                        wait_targets.append(target)
                for seq in prediction.store_seqs:
                    record = self.window_by_seq(seq)
                    if record is not None:
                        issue_ready = max(issue_ready, record.addr_ready - 1)
                        wait_targets.append(record)
                if self.emit_dep_predicted is not None:
                    self.emit_dep_predicted(
                        DependencePredicted(
                            index, pc, prediction, tuple(wait_targets), measuring
                        )
                    )

            issue = self.allocate_load_port(issue_ready)
            exec_cycle = issue + 1  # AGU
            resolution = resolve_load(
                candidates,
                address,
                size,
                exec_cycle,
                l1d_latency,
                fwd_filter,
                checker=checker,
            )
            if resolution.kind is ForwardKind.CACHE:
                complete = self.load_access(pc, address, exec_cycle)
            else:
                complete = resolution.data_ready
            if self.emit_load_resolved is not None:
                self.emit_load_resolved(
                    LoadResolved(index, pc, resolution, exec_cycle, complete,
                                 measuring)
                )

            commit_cycle = self.allocate_commit(max(complete + 1, 0))

            if not resolution.violated:
                break

            # ---- memory-order violation: lazy squash at commit, then replay --
            was_violated = True
            training_store = (
                resolution.violation_store_commit
                if self.trains_at_commit
                else resolution.violation_store_detect
            )
            violation = ViolationInfo(
                load_pc=pc,
                load_seq=index,
                load_snapshot=snapshot,
                load_store_count=store_count,
                store_pc=training_store.pc,
                store_seq=training_store.seq,
                store_snapshot=training_store.hist_snapshot,
                store_number=training_store.store_number,
                history=history,
            )
            if self.emit_violation is not None:
                self.emit_violation(Violation(index, pc, violation, False, measuring))
            attempt_dispatch, attempt_ready = self.squash_unit.squash(
                index,
                pc,
                exec_cycle,
                commit_cycle,
                attempt_dispatch,
                ready_to_issue,
                training_store,
                measuring,
            )

        # ---- commit-time feedback -------------------------------------------
        # Ground truth is the oracle dependence (youngest conflicting store at
        # the load's unconstrained execute estimate), not the post-wait window:
        # a correctly-waited load whose forwarder drained into the cache during
        # the wait still waited for the right store.
        actual = (
            resolution.true_store if resolution.true_store is not None else oracle_store
        )
        delayed = issue_ready > attempt_ready if prediction.is_dependence else False
        waited_correct = (
            prediction.is_dependence
            and actual is not None
            and any(target.seq == actual.seq for target in wait_targets)
        )
        false_positive = prediction.is_dependence and delayed and not waited_correct
        predicted_number = wait_targets[0].store_number if wait_targets else None
        if self.emit_load_committed is not None:
            self.emit_load_committed(
                LoadCommitted(
                    index,
                    LoadCommitInfo(
                        pc=pc,
                        seq=index,
                        hist_snapshot=snapshot,
                        store_count=store_count,
                        prediction=prediction,
                        predicted_store_number=predicted_number,
                        actual_store_number=actual.store_number if actual else None,
                        waited_correct=waited_correct,
                        false_positive=false_positive,
                        violated=was_violated,
                        history=history,
                    ),
                    measuring,
                )
            )

        self.load_ring[ctx.load_count % self.lq] = commit_cycle
        ctx.load_count += 1
        if op.dst_reg is not None:
            self.reg_ready[op.dst_reg] = complete
        return issue, complete, commit_cycle

    # -------------------------------------------------------- wrong path --

    def run_wrong_path(
        self, start_index: int, depth: int, cycle: int, measuring: bool
    ) -> None:
        """Replay ops from the branch's other outcome as phantoms.

        Phantom loads touch the caches (pollution and accidental prefetch)
        and query the memory dependence predictor; when one conflicts with an
        in-flight store, predictors that train *at detection* learn the
        wrong-path dependence — exactly the pollution the paper says PHAST's
        at-commit training avoids (Sec. IV-A1). Phantoms never commit, write,
        or enter the branch history (it is repaired on squash).
        """
        ctx = self.ctx
        trace = ctx.trace
        history = self.history
        store_count = ctx.store_count
        info = self.dispatch_info
        end = min(len(trace), start_index + depth)
        for phantom_index in range(start_index, end):
            op = trace[phantom_index]
            # Branches on the wrong path follow whatever the recorded
            # occurrence did (the front end keeps predicting); only loads
            # have observable side effects here.
            if not op.is_load:
                continue
            mem = op.mem
            self.load_access(op.pc, mem.address, cycle)
            info.pc = op.pc
            info.seq = -phantom_index - 1  # phantom ids never collide
            info.hist_snapshot = history.snapshot()
            info.store_count = store_count
            info.oracle_store_number = None
            info.oracle_multi_store = False
            self.predict_load(info)
            if self.emit_wrong_path_load is not None:
                self.emit_wrong_path_load(WrongPathLoad(phantom_index, op.pc, measuring))
            if self.trains_at_commit:
                continue  # squashed before commit: never trained (PHAST)
            candidates = self.candidates_of(mem.address, mem.size)
            resolution = resolve_load(
                candidates,
                mem.address,
                mem.size,
                cycle,
                self.l1d_latency,
                self.fwd_filter,
                checker=self.checker,
            )
            if resolution.violated:
                training_store = resolution.violation_store_detect
                violation = ViolationInfo(
                    load_pc=op.pc,
                    load_seq=-phantom_index - 1,
                    load_snapshot=history.snapshot(),
                    load_store_count=store_count,
                    store_pc=training_store.pc,
                    store_seq=training_store.seq,
                    store_snapshot=training_store.hist_snapshot,
                    store_number=training_store.store_number,
                    history=history,
                )
                if self.emit_violation is not None:
                    self.emit_violation(
                        Violation(phantom_index, op.pc, violation, True, measuring)
                    )


class StoreStage:
    """Stores: AGU scheduling, Store Sets serialisation, window insertion."""

    __slots__ = (
        "ctx",
        "reg_ready",
        "window_append",
        "window_by_seq",
        "predict_store",
        "allocate_store_port",
        "allocate_commit",
        "allocate_drain",
        "store_ring",
        "sq",
        "d2i",
        "dispatch_info",
        "emit_store_recorded",
    )

    def __init__(self, ctx: SimContext, issue_stage: IssueStage) -> None:
        self.ctx = ctx
        self.reg_ready = ctx.reg_ready
        self.window_append = ctx.window.append
        self.window_by_seq = ctx.window.by_seq
        self.predict_store = ctx.predictor.on_store_dispatch
        self.allocate_store_port = issue_stage.ports[OpKind.STORE].allocate
        self.allocate_commit = ctx.commit.allocate
        self.allocate_drain = ctx.drain.allocate
        self.store_ring = ctx.store_ring
        self.sq = ctx.sq
        self.d2i = ctx.d2i
        # The reusable per-store predictor hand-off record (see module doc).
        self.dispatch_info = StoreDispatchInfo(
            pc=0, seq=0, hist_snapshot=0, store_number=0, history=ctx.history
        )
        self.emit_store_recorded = ctx.emit_store_recorded

    def process(
        self,
        op: MicroOp,
        index: int,
        dispatch_cycle: int,
        ready_to_issue: int,
        snapshot: int,
        measuring: bool,
    ) -> Tuple[int, int, int]:
        ctx = self.ctx
        reg_ready = self.reg_ready
        store_count = ctx.store_count
        pc = op.pc
        data_operands = 0
        for reg in op.store_data_regs:
            ready = reg_ready[reg]
            if ready > data_operands:
                data_operands = ready
        info = self.dispatch_info
        info.pc = pc
        info.seq = index
        info.hist_snapshot = snapshot
        info.store_number = store_count
        store_pred = self.predict_store(info)
        agu_ready = ready_to_issue
        exec_floor = max(dispatch_cycle + self.d2i, data_operands)
        if store_pred.is_dependence:
            # Store Sets serialises stores of a set: this store may not
            # execute before the previous store of its set.
            for dep_seq in store_pred.store_seqs:
                record = self.window_by_seq(dep_seq)
                if record is not None:
                    agu_ready = max(agu_ready, record.exec_cycle + 1)
        issue = self.allocate_store_port(agu_ready)
        addr_ready = issue + 1
        complete = max(addr_ready, exec_floor)
        commit_cycle = self.allocate_commit(max(complete + 1, ctx.last_commit))
        drain_cycle = self.allocate_drain(commit_cycle + 1)
        record = StoreRecord(
            seq=index,
            pc=pc,
            address=op.mem.address,
            size=op.mem.size,
            store_number=store_count,
            addr_ready=addr_ready,
            exec_cycle=complete,
            drain_cycle=drain_cycle,
            hist_snapshot=snapshot,
        )
        if self.emit_store_recorded is not None:
            self.emit_store_recorded(StoreRecorded(index, record, measuring))
        self.window_append(record)
        self.store_ring[store_count % self.sq] = drain_cycle
        ctx.store_count += 1
        return issue, complete, commit_cycle


class BranchStage:
    """Branches: front-end prediction, redirects, wrong-path replay."""

    __slots__ = ("ctx", "memory_stage", "allocate_branch_port", "latency",
                 "redirect_penalty", "observe", "record_history",
                 "allocate_commit", "wrong_path_depth", "wrong_path_after",
                 "emit_branch_resolved")

    def __init__(
        self, ctx: SimContext, issue_stage: IssueStage, memory_stage: MemoryStage
    ) -> None:
        self.ctx = ctx
        self.memory_stage = memory_stage
        self.allocate_branch_port = issue_stage.ports[OpKind.BRANCH].allocate
        self.latency = ctx.config.latencies[OpKind.BRANCH]
        self.redirect_penalty = ctx.config.branch_redirect_penalty
        self.observe = ctx.branch_predictor.observe
        self.record_history = ctx.history.record
        self.allocate_commit = ctx.commit.allocate
        self.wrong_path_depth = ctx.wrong_path_depth
        self.wrong_path_after = ctx.wrong_path_after
        self.emit_branch_resolved = ctx.emit_branch_resolved

    def process(
        self,
        op: MicroOp,
        index: int,
        dispatch_cycle: int,
        ready_to_issue: int,
        measuring: bool,
    ) -> Tuple[int, int, int]:
        ctx = self.ctx
        issue = self.allocate_branch_port(ready_to_issue)
        complete = issue + self.latency
        branch = op.branch
        mispredicted = self.observe(op.pc, branch.kind, branch.taken, branch.target)
        if self.emit_branch_resolved is not None:
            self.emit_branch_resolved(
                BranchResolved(index, op.pc, branch.taken, mispredicted, measuring)
            )
        wrong_path_depth = self.wrong_path_depth
        if mispredicted:
            redirect = complete + self.redirect_penalty
            if redirect > ctx.frontend_ready:
                ctx.frontend_ready = redirect
            if wrong_path_depth:
                wrong_index = self.wrong_path_after.get((op.pc, not branch.taken))
                if wrong_index is not None:
                    self.memory_stage.run_wrong_path(
                        wrong_index, wrong_path_depth, dispatch_cycle, measuring
                    )
        if wrong_path_depth:
            self.wrong_path_after.setdefault((op.pc, branch.taken), index + 1)
        self.record_history(op.pc, branch)
        commit_cycle = self.allocate_commit(max(complete + 1, ctx.last_commit))
        return issue, complete, commit_cycle


class ExecuteStage:
    """ALU / MUL / DIV / FP / NOP: fixed-latency execution.

    The per-kind port pool, latency and busy span are precomputed into one
    dispatch table at construction — the hot path does a single dict lookup
    per op instead of two (latency + port) plus an is-DIV test.
    """

    __slots__ = ("ctx", "reg_ready", "allocate_commit", "by_kind")

    def __init__(self, ctx: SimContext, issue_stage: IssueStage) -> None:
        self.ctx = ctx
        self.reg_ready = ctx.reg_ready
        self.allocate_commit = ctx.commit.allocate
        self.by_kind = {}
        for kind, latency in ctx.config.latencies.items():
            pool = issue_stage.ports.get(kind)
            if pool is None:
                continue
            busy = latency if kind is OpKind.DIV else 1  # DIV unpipelined
            self.by_kind[kind] = (pool.allocate, latency, busy)

    def process(
        self, op: MicroOp, kind: OpKind, dispatch_cycle: int, ready_to_issue: int
    ) -> Tuple[int, int, int]:
        ctx = self.ctx
        allocate_port, latency, busy = self.by_kind[kind]
        issue = allocate_port(ready_to_issue, busy)
        complete = issue + latency
        if op.dst_reg is not None:
            self.reg_ready[op.dst_reg] = complete
        commit_cycle = self.allocate_commit(max(complete + 1, ctx.last_commit))
        return issue, complete, commit_cycle


class CommitStage:
    """Retire bookkeeping: rings, retirement watermark, interval boundaries."""

    __slots__ = ("ctx", "commit_ring", "issue_ring", "rob", "iq",
                 "emit_op_committed", "emit_interval")

    def __init__(self, ctx: SimContext) -> None:
        self.ctx = ctx
        self.commit_ring = ctx.commit_ring
        self.issue_ring = ctx.issue_ring
        self.rob = ctx.rob
        self.iq = ctx.iq
        self.emit_op_committed = ctx.emit_op_committed
        self.emit_interval = ctx.emit_interval

    def retire(
        self,
        index: int,
        kind: OpKind,
        dispatch_cycle: int,
        issue: int,
        complete: int,
        commit_cycle: int,
        measuring: bool,
    ) -> None:
        ctx = self.ctx
        self.commit_ring[index % self.rob] = commit_cycle
        self.issue_ring[index % self.iq] = issue
        if commit_cycle > ctx.last_commit:
            ctx.last_commit = commit_cycle
        emit = self.emit_op_committed
        if emit is not None:
            emit(
                OpCommitted(
                    index, kind, dispatch_cycle, complete, commit_cycle, measuring
                )
            )
        if measuring:
            if self.emit_interval is not None:
                ctx.interval_op_count += 1
                if ctx.interval_op_count >= ctx.interval_ops:
                    end_cycle = ctx.last_commit
                    self.emit_interval(
                        IntervalBoundary(
                            ctx.interval_index,
                            ctx.interval_start_op,
                            index,
                            ctx.interval_start_cycle,
                            end_cycle,
                        )
                    )
                    ctx.interval_index += 1
                    ctx.interval_op_count = 0
                    ctx.interval_start_cycle = end_cycle
                    ctx.interval_start_op = index + 1
        elif index == ctx.warmup_ops - 1:
            ctx.warmup_end_cycle = ctx.last_commit
            ctx.interval_start_cycle = ctx.last_commit