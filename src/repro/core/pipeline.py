"""Trace-driven out-of-order pipeline timing model (orchestrator).

Micro-ops are processed in program order; each receives dispatch / issue /
execute / complete / commit cycles under:

* register true dependences (a producer scoreboard per architectural register);
* structural limits — dispatch and commit width, ROB / IQ / LQ / SQ+SB
  occupancy (ring buffers of the freeing cycle of the op N slots back),
  per-class execution ports;
* branch redirects — eager squash: dispatch stalls until the mispredicted
  branch resolves plus the front-end refill penalty;
* memory: loads disambiguate against the in-flight store window
  (:mod:`repro.core.lsq`), forwarding or reading the cache hierarchy;
* memory dependence prediction — predicted dependences become wait edges on
  the load's issue; mispredicted speculation becomes a lazy squash at the
  load's commit followed by replay from the load (Sec. IV-A1).

Replay is livelock-free: in-order commit guarantees every older store has
executed before the squashed load's commit, so the replayed load (dispatched
after commit + penalty) can no longer execute before any older store's
address resolves.

Wrong-path work is not simulated; its cost appears as the redirect/squash
penalties plus a re-executed-micro-op counter (DESIGN.md §1 records this
fidelity trade).

The scheduling itself lives in the stage components
(:mod:`repro.core.stages`) operating on a shared per-run
:class:`~repro.core.context.SimContext`; everything *observational* —
statistics, invariant checking, MDP training, interval metrics — subscribes
to the typed probe bus (:mod:`repro.core.probes`). ``Pipeline`` here only
wires stages to the bus and drives the program-order loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Optional, Type

from repro.core.config import CoreConfig

# Re-exported for backwards compatibility: these structural helpers lived
# here before the stage split and tests/extensions import them from this
# module.
from repro.core.context import (  # noqa: F401
    SimContext,
    _PortPool,
    _StoreWindow,
    _WidthCursor,
)
from repro.core.lsq import ForwardKind
from repro.core.probes import (
    BranchResolved,
    DependencePredicted,
    LoadCommitted,
    LoadResolved,
    MultiStoreLoad,
    OpCommitted,
    OpDispatched,
    Probe,
    ProbeBus,
    ProbeEvent,
    RunFinished,
    Squash,
    Violation,
    WrongPathLoad,
)
from repro.core.stages import (
    BranchStage,
    CommitStage,
    DispatchStage,
    ExecuteStage,
    IssueStage,
    MemoryStage,
    SquashUnit,
    StoreStage,
)
from repro.frontend.branch_predictors import BranchPredictor
from repro.frontend.history import GlobalHistory
from repro.frontend.tage import TAGEPredictor
from repro.isa.microop import OpKind
from repro.isa.trace import Trace
from repro.mdp.base import MDPredictor, MDPTrainingProbe
from repro.memory.hierarchy import MemoryHierarchy

if TYPE_CHECKING:  # import cycle guard: repro.sim.__init__ imports this module
    from repro.sim.invariants import InvariantChecker


@dataclass
class PipelineStats:
    """Everything the paper's figures consume, per simulation."""

    committed_uops: int = 0
    cycles: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    branch_mispredicts: int = 0
    # Memory dependence outcomes:
    violations: int = 0  # false negatives -> squashes
    false_positives: int = 0  # dependence predicted, wrong/unnecessary, delayed
    correct_waits: int = 0  # dependence predicted and it was the true store
    dependences_predicted: int = 0
    forwarded_loads: int = 0
    partial_loads: int = 0
    cache_loads: int = 0
    multi_store_loads: int = 0
    multi_store_inorder: int = 0  # multi-store loads whose writers had executed in order
    reexecuted_uops: int = 0
    wrong_path_loads: int = 0  # phantom loads replayed (wrong-path modelling)
    wrong_path_trainings: int = 0  # predictor trainings caused by phantoms

    @property
    def ipc(self) -> float:
        return self.committed_uops / self.cycles if self.cycles else 0.0

    @property
    def violation_mpki(self) -> float:
        if not self.committed_uops:
            return 0.0
        return self.violations * 1000.0 / self.committed_uops

    @property
    def false_positive_mpki(self) -> float:
        if not self.committed_uops:
            return 0.0
        return self.false_positives * 1000.0 / self.committed_uops

    @property
    def total_mdp_mpki(self) -> float:
        return self.violation_mpki + self.false_positive_mpki

    @property
    def branch_mpki(self) -> float:
        if not self.committed_uops:
            return 0.0
        return self.branch_mispredicts * 1000.0 / self.committed_uops


class StatsProbe(Probe):
    """Accumulates :class:`PipelineStats` from bus events.

    Every counter gates on the event's ``measuring`` flag, so warm-up ops
    (which execute, train predictors and warm caches) stay out of every
    statistic — same contract as the old inline counting.
    """

    __slots__ = ("stats", "_rob_entries", "_dispatch_width")

    def __init__(self, stats: PipelineStats, config: CoreConfig) -> None:
        self.stats = stats
        self._rob_entries = config.rob_entries
        self._dispatch_width = config.dispatch_width

    def subscriptions(self) -> Mapping[Type[ProbeEvent], Callable]:
        return {
            LoadResolved: self._on_load_resolved,
            MultiStoreLoad: self._on_multi_store,
            DependencePredicted: self._on_dependence_predicted,
            Violation: self._on_violation,
            Squash: self._on_squash,
            WrongPathLoad: self._on_wrong_path_load,
            BranchResolved: self._on_branch_resolved,
            LoadCommitted: self._on_load_committed,
            OpCommitted: self._on_op_committed,
            RunFinished: self._on_run_finished,
        }

    def _on_op_committed(self, event: OpCommitted) -> None:
        if event.measuring:
            stats = self.stats
            stats.committed_uops += 1
            kind = event.kind
            if kind is OpKind.LOAD:
                stats.loads += 1
            elif kind is OpKind.STORE:
                stats.stores += 1
            elif kind is OpKind.BRANCH:
                stats.branches += 1

    def _on_load_resolved(self, event: LoadResolved) -> None:
        # Counted per execution attempt: a squashed-and-replayed load
        # resolves (and is counted) once per attempt.
        if event.measuring:
            kind = event.resolution.kind
            if kind is ForwardKind.CACHE:
                self.stats.cache_loads += 1
            elif kind is ForwardKind.FORWARD:
                self.stats.forwarded_loads += 1
            else:
                self.stats.partial_loads += 1

    def _on_multi_store(self, event: MultiStoreLoad) -> None:
        if event.measuring:
            self.stats.multi_store_loads += 1
            if event.writers_inorder:
                self.stats.multi_store_inorder += 1

    def _on_dependence_predicted(self, event: DependencePredicted) -> None:
        if event.measuring:
            self.stats.dependences_predicted += 1

    def _on_violation(self, event: Violation) -> None:
        if event.measuring:
            if event.phantom:
                self.stats.wrong_path_trainings += 1
            else:
                self.stats.violations += 1

    def _on_squash(self, event: Squash) -> None:
        if event.measuring:
            # The re-execution cost model: everything dispatched between the
            # load's first attempt and the squash is thrown away, bounded by
            # the ROB.
            self.stats.reexecuted_uops += min(
                self._rob_entries,
                self._dispatch_width
                * max(0, event.squash_cycle - event.attempt_dispatch_cycle),
            )

    def _on_wrong_path_load(self, event: WrongPathLoad) -> None:
        if event.measuring:
            self.stats.wrong_path_loads += 1

    def _on_branch_resolved(self, event: BranchResolved) -> None:
        if event.measuring and event.mispredicted:
            self.stats.branch_mispredicts += 1

    def _on_load_committed(self, event: LoadCommitted) -> None:
        if event.measuring:
            info = event.info
            if info.waited_correct:
                self.stats.correct_waits += 1
            if info.false_positive:
                self.stats.false_positives += 1

    def _on_run_finished(self, event: RunFinished) -> None:
        self.stats.cycles = max(
            1, event.last_commit_cycle - event.warmup_end_cycle
        )


class PipelineRun:
    """One in-progress trace execution: ``begin()`` -> ``advance()`` -> ``finish()``.

    ``Pipeline.run`` is simply ``begin`` + one full ``advance`` + ``finish``;
    the segmented form exists so callers can pause the program-order loop at
    an arbitrary op index — the checkpointed-sampling subsystem
    (:mod:`repro.sampling`) snapshots machine state between ``advance`` calls
    and resumes a restored run bit-identically.

    Stage objects are built *lazily* on the first ``advance`` call, not at
    ``begin``: stages snapshot context structures (rings, the store window,
    predictor hooks) into their own slots at construction, so a restore that
    swaps those structures wholesale must happen after ``begin`` but before
    the first advance. The restored run then binds its stages to the restored
    state exactly as a fresh run binds to fresh state.
    """

    __slots__ = ("pipeline", "trace", "ctx", "next_index", "_stages")

    def __init__(
        self, pipeline: "Pipeline", trace: Trace, total: int, warmup_ops: int
    ) -> None:
        self.pipeline = pipeline
        self.trace = trace
        self.next_index = 0
        self._stages = None
        ctx = SimContext(
            config=pipeline.config,
            hierarchy=pipeline.hierarchy,
            history=pipeline.history,
            predictor=pipeline.predictor,
            branch_predictor=pipeline.branch_predictor,
            checker=pipeline.invariants,
            trace=trace,
            total=total,
            warmup_ops=warmup_ops,
        )
        ctx.bind(pipeline.bus)
        self.ctx = ctx

    def _build_stages(self) -> None:
        ctx = self.ctx
        dispatch_stage = DispatchStage(ctx)
        issue_stage = IssueStage(ctx)
        squash_unit = SquashUnit(ctx)
        memory_stage = MemoryStage(ctx, issue_stage, squash_unit)
        store_stage = StoreStage(ctx, issue_stage)
        branch_stage = BranchStage(ctx, issue_stage, memory_stage)
        execute_stage = ExecuteStage(ctx, issue_stage)
        commit_stage = CommitStage(ctx)
        self._stages = (
            dispatch_stage.process,
            memory_stage.process,
            store_stage.process,
            branch_stage.process,
            execute_stage.process,
            commit_stage.retire,
        )

    def advance(self, until: Optional[int] = None) -> int:
        """Process ops up to (but excluding) index ``until``; returns the cursor.

        ``None`` runs to the end of the (possibly ``max_ops``-capped) trace.
        Calling with ``until <= next_index`` is a no-op, so drivers can clamp
        freely.
        """
        ctx = self.ctx
        total = ctx.total
        stop = total if until is None else min(until, total)
        start = self.next_index
        if stop <= start:
            return start
        if self._stages is None:
            self._build_stages()

        # Bound methods hoisted out of the loop; the loop body below is the
        # per-op hot path.
        (
            process_dispatch,
            process_load,
            process_store,
            process_branch,
            process_execute,
            retire,
        ) = self._stages
        trace = self.trace
        warmup_ops = ctx.warmup_ops
        load_kind = OpKind.LOAD
        store_kind = OpKind.STORE
        branch_kind = OpKind.BRANCH

        for index in range(start, stop):
            op = trace[index]
            kind = op.kind
            measuring = index >= warmup_ops
            dispatch_cycle, ready_to_issue, snapshot = process_dispatch(
                op, index, kind, measuring
            )
            if kind is load_kind:
                issue, complete, commit_cycle = process_load(
                    op, index, dispatch_cycle, ready_to_issue, snapshot, measuring
                )
            elif kind is store_kind:
                issue, complete, commit_cycle = process_store(
                    op, index, dispatch_cycle, ready_to_issue, snapshot, measuring
                )
            elif kind is branch_kind:
                issue, complete, commit_cycle = process_branch(
                    op, index, dispatch_cycle, ready_to_issue, measuring
                )
            else:  # ALU / MUL / DIV / FP / NOP
                issue, complete, commit_cycle = process_execute(
                    op, kind, dispatch_cycle, ready_to_issue
                )
            retire(index, kind, dispatch_cycle, issue, complete, commit_cycle,
                   measuring)
        self.next_index = stop
        return stop

    @property
    def done(self) -> bool:
        return self.next_index >= self.ctx.total

    def finish(self) -> PipelineStats:
        """Emit ``RunFinished`` and return the pipeline's statistics."""
        ctx = self.ctx
        emit_finished = self.pipeline.bus.resolve(RunFinished)
        if emit_finished is not None:
            emit_finished(
                RunFinished(
                    ctx.total,
                    ctx.total - ctx.warmup_ops,
                    ctx.warmup_ops,
                    ctx.last_commit,
                    ctx.warmup_end_cycle,
                )
            )
        return self.pipeline.stats


class Pipeline:
    """One core running one trace with one memory dependence predictor.

    Built-in probes — :class:`StatsProbe`, the predictor's
    :class:`~repro.mdp.base.MDPTrainingProbe` and (when enabled) the
    :class:`~repro.sim.invariants.InvariantProbe` — are attached at
    construction; MDP training in particular is simulation *semantics*, not
    optional observation. Additional observers attach via ``probes=[...]``
    or :meth:`attach`, and "zero optional probes" costs nothing on the hot
    path: event types without subscribers are pre-resolved to ``None`` at
    ``run()`` entry and never constructed.
    """

    def __init__(
        self,
        config: CoreConfig,
        predictor: MDPredictor,
        branch_predictor: Optional[BranchPredictor] = None,
        hierarchy: Optional[MemoryHierarchy] = None,
        check_invariants: Optional[bool] = None,
        probes: Optional[Iterable[Probe]] = None,
        train_predictor: bool = True,
    ) -> None:
        self.config = config
        self.predictor = predictor
        self.branch_predictor = branch_predictor or TAGEPredictor()
        self.hierarchy = hierarchy or MemoryHierarchy(config.hierarchy)
        self.history = GlobalHistory()
        self.stats = PipelineStats()
        self.bus = ProbeBus()
        self.bus.attach(StatsProbe(self.stats, config))
        if train_predictor:
            self.bus.attach(MDPTrainingProbe(predictor))
        # Imported lazily: repro.sim.__init__ (transitively) imports this
        # module, so a top-level import of repro.sim.invariants would cycle.
        from repro.sim.invariants import (
            InvariantChecker,
            InvariantProbe,
            invariants_enabled,
        )

        # None defers to the REPRO_CHECK_INVARIANTS environment knob; an
        # explicit bool wins (CLI --check-invariants, harness workers).
        enabled = invariants_enabled() if check_invariants is None else check_invariants
        self.invariants: Optional["InvariantChecker"] = None
        if enabled:
            self.invariants = InvariantChecker(
                rob_entries=config.rob_entries,
                iq_entries=config.iq_entries,
                lq_entries=config.lq_entries,
                sq_entries=config.sq_entries,
            )
            self.bus.attach(InvariantProbe(self.invariants, self.stats))
        for probe in probes or ():
            self.bus.attach(probe)

    def attach(self, probe: Probe) -> Probe:
        """Attach an additional probe to this pipeline's bus."""
        return self.bus.attach(probe)

    # ------------------------------------------------------------------ run --

    def begin(
        self,
        trace: Trace,
        max_ops: Optional[int] = None,
        warmup_ops: int = 0,
    ) -> PipelineRun:
        """Start (but do not advance) a run; returns its :class:`PipelineRun`.

        The handle's context is built and bound to the bus here; stages are
        constructed on the first ``advance``, so checkpoint restore can swap
        context structures in between (see :class:`PipelineRun`).
        """
        total = len(trace) if max_ops is None else min(max_ops, len(trace))
        if warmup_ops < 0 or warmup_ops >= total:
            raise ValueError(f"warmup_ops must be in [0, {total}), got {warmup_ops}")
        return PipelineRun(self, trace, total, warmup_ops)

    def run(
        self,
        trace: Trace,
        max_ops: Optional[int] = None,
        warmup_ops: int = 0,
    ) -> PipelineStats:
        """Run the trace; statistics cover only ops at index >= ``warmup_ops``.

        Warm-up ops execute normally — they train predictors and warm caches
        — but are excluded from every counter and from the cycle count, the
        paper's SimPoint-style steady-state methodology (Sec. V).
        """
        handle = self.begin(trace, max_ops=max_ops, warmup_ops=warmup_ops)
        handle.advance()
        return handle.finish()
