"""Trace-driven out-of-order pipeline timing model.

Micro-ops are processed in program order; each receives dispatch / issue /
execute / complete / commit cycles under:

* register true dependences (a producer scoreboard per architectural register);
* structural limits — dispatch and commit width, ROB / IQ / LQ / SQ+SB
  occupancy (ring buffers of the freeing cycle of the op N slots back),
  per-class execution ports;
* branch redirects — eager squash: dispatch stalls until the mispredicted
  branch resolves plus the front-end refill penalty;
* memory: loads disambiguate against the in-flight store window
  (:mod:`repro.core.lsq`), forwarding or reading the cache hierarchy;
* memory dependence prediction — predicted dependences become wait edges on
  the load's issue; mispredicted speculation becomes a lazy squash at the
  load's commit followed by replay from the load (Sec. IV-A1).

Replay is livelock-free: in-order commit guarantees every older store has
executed before the squashed load's commit, so the replayed load (dispatched
after commit + penalty) can no longer execute before any older store's
address resolves.

Wrong-path work is not simulated; its cost appears as the redirect/squash
penalties plus a re-executed-micro-op counter (DESIGN.md §1 records this
fidelity trade).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.core.config import CoreConfig
from repro.core.lsq import (
    ForwardKind,
    StoreRecord,
    multi_store_suppliers,
    resolve_load,
)
from repro.frontend.branch_predictors import BranchPredictor
from repro.frontend.history import GlobalHistory
from repro.frontend.tage import TAGEPredictor
from repro.isa.microop import MicroOp, OpKind
from repro.isa.trace import Trace
from repro.mdp.base import (
    LoadCommitInfo,
    LoadDispatchInfo,
    MDPredictor,
    StoreDispatchInfo,
    ViolationInfo,
)
from repro.memory.hierarchy import MemoryHierarchy

if TYPE_CHECKING:  # import cycle guard: repro.sim.__init__ imports this module
    from repro.sim.invariants import InvariantChecker


@dataclass
class PipelineStats:
    """Everything the paper's figures consume, per simulation."""

    committed_uops: int = 0
    cycles: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    branch_mispredicts: int = 0
    # Memory dependence outcomes:
    violations: int = 0  # false negatives -> squashes
    false_positives: int = 0  # dependence predicted, wrong/unnecessary, delayed
    correct_waits: int = 0  # dependence predicted and it was the true store
    dependences_predicted: int = 0
    forwarded_loads: int = 0
    partial_loads: int = 0
    cache_loads: int = 0
    multi_store_loads: int = 0
    multi_store_inorder: int = 0  # multi-store loads whose writers had executed in order
    reexecuted_uops: int = 0
    wrong_path_loads: int = 0  # phantom loads replayed (wrong-path modelling)
    wrong_path_trainings: int = 0  # predictor trainings caused by phantoms

    @property
    def ipc(self) -> float:
        return self.committed_uops / self.cycles if self.cycles else 0.0

    @property
    def violation_mpki(self) -> float:
        return self.violations * 1000.0 / max(1, self.committed_uops)

    @property
    def false_positive_mpki(self) -> float:
        return self.false_positives * 1000.0 / max(1, self.committed_uops)

    @property
    def total_mdp_mpki(self) -> float:
        return self.violation_mpki + self.false_positive_mpki

    @property
    def branch_mpki(self) -> float:
        return self.branch_mispredicts * 1000.0 / max(1, self.committed_uops)


class _WidthCursor:
    """Allocates slots of at most ``width`` events per cycle, in order."""

    __slots__ = ("width", "cycle", "count")

    def __init__(self, width: int) -> None:
        self.width = width
        self.cycle = 0
        self.count = 0

    def allocate(self, earliest: int) -> int:
        """Return the cycle of the next slot at or after ``earliest``."""
        if earliest > self.cycle:
            self.cycle = earliest
            self.count = 1
            return earliest
        if self.count < self.width:
            self.count += 1
            return self.cycle
        self.cycle += 1
        self.count = 1
        return self.cycle


class _PortPool:
    """Slot table for one execution-port class.

    Books up to ``ports`` issues per cycle. Unlike a next-free-cycle greedy
    tracker, a later-processed op can claim an *earlier* unused slot — which
    is what an out-of-order scheduler does: an op that becomes ready early
    must not queue behind an older op that books a far-future slot (e.g. a
    store whose address register resolves after a cache miss).
    """

    __slots__ = ("ports", "_booked")

    def __init__(self, ports: int) -> None:
        self.ports = ports
        self._booked: Dict[int, int] = {}

    def allocate(self, ready: int, busy_cycles: int = 1) -> int:
        """Book the earliest slot at or after ``ready``; returns issue cycle."""
        booked = self._booked
        cycle = ready
        if busy_cycles == 1:
            while booked.get(cycle, 0) >= self.ports:
                cycle += 1
            booked[cycle] = booked.get(cycle, 0) + 1
            return cycle
        while True:
            if all(
                booked.get(cycle + offset, 0) < self.ports
                for offset in range(busy_cycles)
            ):
                for offset in range(busy_cycles):
                    slot = cycle + offset
                    booked[slot] = booked.get(slot, 0) + 1
                return cycle
            cycle += 1


class _StoreWindow:
    """The in-flight store window (SQ + SB) with an address-granule index."""

    GRANULE_SHIFT = 3  # 8-byte granules; the generator emits aligned accesses

    def __init__(self, capacity: int) -> None:
        self._capacity = capacity
        self._records: Deque[StoreRecord] = deque()
        self._by_number: Dict[int, StoreRecord] = {}
        self._by_seq: Dict[int, StoreRecord] = {}
        self._by_granule: Dict[int, List[StoreRecord]] = {}

    def append(self, record: StoreRecord) -> None:
        self._records.append(record)
        self._by_number[record.store_number] = record
        self._by_seq[record.seq] = record
        first = record.address >> self.GRANULE_SHIFT
        last = (record.end - 1) >> self.GRANULE_SHIFT
        for granule in range(first, last + 1):
            self._by_granule.setdefault(granule, []).append(record)
        while len(self._records) > self._capacity:
            self._evict(self._records.popleft())

    def _evict(self, record: StoreRecord) -> None:
        del self._by_number[record.store_number]
        self._by_seq.pop(record.seq, None)
        first = record.address >> self.GRANULE_SHIFT
        last = (record.end - 1) >> self.GRANULE_SHIFT
        for granule in range(first, last + 1):
            bucket = self._by_granule.get(granule)
            if bucket:
                bucket.remove(record)
                if not bucket:
                    del self._by_granule[granule]

    def by_number(self, store_number: int) -> Optional[StoreRecord]:
        return self._by_number.get(store_number)

    def by_seq(self, seq: int) -> Optional[StoreRecord]:
        return self._by_seq.get(seq)

    def candidates(self, address: int, size: int) -> List[StoreRecord]:
        """Stores possibly overlapping [address, address+size), oldest first."""
        first = address >> self.GRANULE_SHIFT
        last = (address + size - 1) >> self.GRANULE_SHIFT
        if first == last:
            found = list(self._by_granule.get(first, ()))
        else:
            seen: Dict[int, StoreRecord] = {}
            for granule in range(first, last + 1):
                for record in self._by_granule.get(granule, ()):
                    seen[record.seq] = record
            found = list(seen.values())
        found.sort(key=lambda record: record.seq)
        return found

    def all_records(self) -> List[StoreRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)


class Pipeline:
    """One core running one trace with one memory dependence predictor."""

    def __init__(
        self,
        config: CoreConfig,
        predictor: MDPredictor,
        branch_predictor: Optional[BranchPredictor] = None,
        hierarchy: Optional[MemoryHierarchy] = None,
        check_invariants: Optional[bool] = None,
    ) -> None:
        self.config = config
        self.predictor = predictor
        self.branch_predictor = branch_predictor or TAGEPredictor()
        self.hierarchy = hierarchy or MemoryHierarchy(config.hierarchy)
        self.history = GlobalHistory()
        self.stats = PipelineStats()
        # Imported lazily: repro.sim.__init__ (transitively) imports this
        # module, so a top-level import of repro.sim.invariants would cycle.
        from repro.sim.invariants import InvariantChecker, invariants_enabled

        # None defers to the REPRO_CHECK_INVARIANTS environment knob; an
        # explicit bool wins (CLI --check-invariants, harness workers).
        enabled = invariants_enabled() if check_invariants is None else check_invariants
        self.invariants: Optional["InvariantChecker"] = (
            InvariantChecker(
                rob_entries=config.rob_entries,
                iq_entries=config.iq_entries,
                lq_entries=config.lq_entries,
                sq_entries=config.sq_entries,
            )
            if enabled
            else None
        )

    # ------------------------------------------------------------------ run --

    def run(
        self,
        trace: Trace,
        max_ops: Optional[int] = None,
        warmup_ops: int = 0,
    ) -> PipelineStats:
        """Run the trace; statistics cover only ops at index >= ``warmup_ops``.

        Warm-up ops execute normally — they train predictors and warm caches
        — but are excluded from every counter and from the cycle count, the
        paper's SimPoint-style steady-state methodology (Sec. V).
        """
        config = self.config
        stats = self.stats
        history = self.history
        predictor = self.predictor
        checker = self.invariants
        l1d_latency = config.hierarchy.l1d.hit_latency
        d2i = config.dispatch_to_issue_latency
        fwd_filter = config.forwarding_filter

        dispatch = _WidthCursor(config.dispatch_width)
        commit = _WidthCursor(config.commit_width)
        drain = _WidthCursor(config.store_drain_per_cycle)
        ports = {kind: _PortPool(count) for kind, count in config.ports.items()}

        rob = config.rob_entries
        iq = config.iq_entries
        lq = config.lq_entries
        sq = config.sq_entries
        commit_ring = [0] * rob  # commit cycle of the op `rob` slots back
        issue_ring = [0] * iq  # issue cycle of the op `iq` slots back
        load_ring = [0] * lq  # commit cycle of the load `lq` loads back
        store_ring = [0] * sq  # drain cycle of the store `sq` stores back

        reg_ready = [0] * config.num_arch_regs
        window = _StoreWindow(capacity=sq + 32)

        frontend_ready = 0
        load_count = 0
        store_count = 0
        last_commit = 0
        last_fetch_line = -1
        # Wrong-path replay memory: (branch pc, outcome) -> trace index of
        # the first op that followed that outcome. On a misprediction, the
        # ops after the *other* outcome are replayed as phantoms.
        wrong_path_depth = config.wrong_path_depth
        wrong_path_after: Dict[Tuple[int, bool], int] = {}

        total = len(trace) if max_ops is None else min(max_ops, len(trace))
        if warmup_ops < 0 or warmup_ops >= total:
            raise ValueError(
                f"warmup_ops must be in [0, {total}), got {warmup_ops}"
            )
        warmup_end_cycle = 0
        for index in range(total):
            op = trace[index]
            kind = op.kind
            measuring = index >= warmup_ops

            # ---- fetch + dispatch ----------------------------------------------
            earliest = max(frontend_ready, commit_ring[index % rob], issue_ring[index % iq])
            fetch_line = op.pc >> 6
            if fetch_line != last_fetch_line:
                last_fetch_line = fetch_line
                earliest = max(earliest, self.hierarchy.fetch_access(op.pc, earliest))
            if kind is OpKind.LOAD:
                earliest = max(earliest, load_ring[load_count % lq])
            elif kind is OpKind.STORE:
                earliest = max(earliest, store_ring[store_count % sq])
            dispatch_cycle = dispatch.allocate(earliest)
            if checker is not None:
                # The rings still hold the freeing cycles of the ops being
                # displaced — occupancy bounds are checkable right here.
                checker.observe_dispatch(
                    index,
                    dispatch_cycle,
                    commit_ring[index % rob],
                    issue_ring[index % iq],
                )
                if kind is OpKind.LOAD:
                    checker.observe_load_slot(
                        index, dispatch_cycle, load_ring[load_count % lq]
                    )
                elif kind is OpKind.STORE:
                    checker.observe_store_slot(
                        index, dispatch_cycle, store_ring[store_count % sq]
                    )
            snapshot = history.snapshot()

            operands = 0
            for reg in op.src_regs:
                ready = reg_ready[reg]
                if ready > operands:
                    operands = ready
            ready_to_issue = max(dispatch_cycle + d2i, operands)

            # ---- execute, by kind --------------------------------------------
            if kind is OpKind.LOAD:
                issue, complete, commit_cycle = self._run_load(
                    op,
                    index,
                    dispatch_cycle,
                    ready_to_issue,
                    snapshot,
                    window,
                    ports[OpKind.LOAD],
                    commit,
                    dispatch,
                    load_count,
                    store_count,
                    l1d_latency,
                    fwd_filter,
                    measuring,
                )
                load_ring[load_count % lq] = commit_cycle
                load_count += 1
                if op.dst_reg is not None:
                    reg_ready[op.dst_reg] = complete
                if measuring:
                    stats.loads += 1

            elif kind is OpKind.STORE:
                addr_operands = operands
                data_operands = 0
                for reg in op.store_data_regs:
                    ready = reg_ready[reg]
                    if ready > data_operands:
                        data_operands = ready
                store_pred = predictor.on_store_dispatch(
                    StoreDispatchInfo(
                        pc=op.pc,
                        seq=index,
                        hist_snapshot=snapshot,
                        store_number=store_count,
                        history=history,
                    )
                )
                agu_ready = max(dispatch_cycle + d2i, addr_operands)
                exec_floor = max(dispatch_cycle + d2i, data_operands)
                if store_pred.is_dependence:
                    # Store Sets serialises stores of a set: this store may not
                    # execute before the previous store of its set.
                    for dep_seq in store_pred.store_seqs:
                        record = window.by_seq(dep_seq)
                        if record is not None:
                            agu_ready = max(agu_ready, record.exec_cycle + 1)
                issue = ports[OpKind.STORE].allocate(agu_ready)
                addr_ready = issue + 1
                complete = max(addr_ready, exec_floor)
                commit_cycle = commit.allocate(max(complete + 1, last_commit))
                drain_cycle = drain.allocate(commit_cycle + 1)
                record = StoreRecord(
                    seq=index,
                    pc=op.pc,
                    address=op.mem.address,
                    size=op.mem.size,
                    store_number=store_count,
                    addr_ready=addr_ready,
                    exec_cycle=complete,
                    drain_cycle=drain_cycle,
                    hist_snapshot=snapshot,
                )
                if checker is not None:
                    checker.observe_store_record(record)
                window.append(record)
                store_ring[store_count % sq] = drain_cycle
                store_count += 1
                if measuring:
                    stats.stores += 1

            elif kind is OpKind.BRANCH:
                issue = ports[OpKind.BRANCH].allocate(ready_to_issue)
                complete = issue + config.latencies[OpKind.BRANCH]
                branch = op.branch
                mispredicted = self.branch_predictor.observe(
                    op.pc, branch.kind, branch.taken, branch.target
                )
                if measuring:
                    stats.branches += 1
                    if mispredicted:
                        stats.branch_mispredicts += 1
                if mispredicted:
                    frontend_ready = max(
                        frontend_ready, complete + config.branch_redirect_penalty
                    )
                    if wrong_path_depth:
                        wrong_index = wrong_path_after.get((op.pc, not branch.taken))
                        if wrong_index is not None:
                            self._run_wrong_path(
                                trace,
                                wrong_index,
                                wrong_path_depth,
                                dispatch_cycle,
                                window,
                                store_count,
                                l1d_latency,
                                fwd_filter,
                                measuring,
                            )
                if wrong_path_depth:
                    wrong_path_after.setdefault((op.pc, branch.taken), index + 1)
                history.record(op.pc, branch)
                commit_cycle = commit.allocate(max(complete + 1, last_commit))

            else:  # ALU / MUL / DIV / FP / NOP
                latency = config.latencies[kind]
                busy = latency if kind is OpKind.DIV else 1  # DIV unpipelined
                issue = ports[kind].allocate(ready_to_issue, busy_cycles=busy)
                complete = issue + latency
                if op.dst_reg is not None:
                    reg_ready[op.dst_reg] = complete
                commit_cycle = commit.allocate(max(complete + 1, last_commit))

            # ---- retire bookkeeping -------------------------------------------
            if checker is not None:
                checker.observe_commit(index, commit_cycle, complete)
            commit_ring[index % rob] = commit_cycle
            issue_ring[index % iq] = issue
            last_commit = max(last_commit, commit_cycle)
            if measuring:
                stats.committed_uops += 1
            elif index == warmup_ops - 1:
                warmup_end_cycle = last_commit

        stats.cycles = max(1, last_commit - warmup_end_cycle)
        if checker is not None:
            checker.finalize(stats, total - warmup_ops)
        return stats

    # -------------------------------------------------------- wrong path --

    def _run_wrong_path(
        self,
        trace: Trace,
        start_index: int,
        depth: int,
        cycle: int,
        window: "_StoreWindow",
        store_count: int,
        l1d_latency: int,
        fwd_filter: bool,
        measuring: bool,
    ) -> None:
        """Replay ops from the branch's other outcome as phantoms.

        Phantom loads touch the caches (pollution and accidental prefetch)
        and query the memory dependence predictor; when one conflicts with an
        in-flight store, predictors that train *at detection* learn the
        wrong-path dependence — exactly the pollution the paper says PHAST's
        at-commit training avoids (Sec. IV-A1). Phantoms never commit, write,
        or enter the branch history (it is repaired on squash).
        """
        predictor = self.predictor
        stats = self.stats
        end = min(len(trace), start_index + depth)
        for phantom_index in range(start_index, end):
            op = trace[phantom_index]
            # Branches on the wrong path follow whatever the recorded
            # occurrence did (the front end keeps predicting); only loads
            # have observable side effects here.
            if not op.is_load:
                continue
            mem = op.mem
            self.hierarchy.load_access(op.pc, mem.address, cycle)
            prediction = predictor.on_load_dispatch(
                LoadDispatchInfo(
                    pc=op.pc,
                    seq=-phantom_index - 1,  # phantom ids never collide
                    hist_snapshot=self.history.snapshot(),
                    store_count=store_count,
                    history=self.history,
                )
            )
            if measuring:
                stats.wrong_path_loads += 1
            if predictor.trains_at_commit:
                continue  # squashed before commit: never trained (PHAST)
            candidates = window.candidates(mem.address, mem.size)
            resolution = resolve_load(
                candidates,
                mem.address,
                mem.size,
                cycle,
                l1d_latency,
                fwd_filter,
                checker=self.invariants,
            )
            if resolution.violated:
                training_store = resolution.violation_store_detect
                predictor.on_violation(
                    ViolationInfo(
                        load_pc=op.pc,
                        load_seq=-phantom_index - 1,
                        load_snapshot=self.history.snapshot(),
                        load_store_count=store_count,
                        store_pc=training_store.pc,
                        store_seq=training_store.seq,
                        store_snapshot=training_store.hist_snapshot,
                        store_number=training_store.store_number,
                        history=self.history,
                    )
                )
                if measuring:
                    stats.wrong_path_trainings += 1

    # ------------------------------------------------------------- the load --

    def _run_load(
        self,
        op: MicroOp,
        index: int,
        dispatch_cycle: int,
        ready_to_issue: int,
        snapshot: int,
        window: _StoreWindow,
        load_ports: _PortPool,
        commit: _WidthCursor,
        dispatch: _WidthCursor,
        load_count: int,
        store_count: int,
        l1d_latency: int,
        fwd_filter: bool,
        measuring: bool = True,
    ) -> Tuple[int, int, int]:
        """Process one load, including violation squash + replay.

        Returns ``(issue, complete, commit_cycle)`` of the final (committing)
        execution.
        """
        config = self.config
        stats = self.stats
        predictor = self.predictor
        history = self.history
        mem = op.mem
        candidates = window.candidates(mem.address, mem.size)

        # Oracle ground truth for the ideal predictor and for commit feedback:
        # youngest older store still in flight at the load's unconstrained
        # execute estimate.
        naive_exec = ready_to_issue + 1
        oracle_store: Optional[StoreRecord] = None
        oracle_multi = False
        visible = [s for s in candidates if s.drain_cycle > naive_exec]
        if visible:
            oracle_store = visible[-1]
            if len(visible) > 1:
                suppliers = multi_store_suppliers(visible, mem.address, mem.size)
                oracle_multi = len(suppliers) >= 2
                if oracle_multi and measuring:
                    stats.multi_store_loads += 1
                    # Fig. 4's second metric: do the load's writers execute in
                    # (program) order? Measured over the suppliers only.
                    execs = [s.exec_cycle for s in suppliers]
                    if measuring and execs == sorted(execs):
                        stats.multi_store_inorder += 1

        was_violated = False
        attempt_dispatch = dispatch_cycle
        attempt_ready = ready_to_issue
        while True:
            prediction = predictor.on_load_dispatch(
                LoadDispatchInfo(
                    pc=op.pc,
                    seq=index,
                    hist_snapshot=snapshot,
                    store_count=store_count,
                    history=history,
                    oracle_store_number=(
                        oracle_store.store_number if oracle_store else None
                    ),
                    oracle_multi_store=oracle_multi,
                )
            )

            # A predicted-dependent load delays issue just long enough to
            # execute after the store's *address* resolves (Sec. I: "the load
            # waits at the issue stage until the conflicting store computes
            # its target address"); forwarding then supplies the data, and
            # the LSQ timing accounts for late store data itself.
            wait_targets: List[StoreRecord] = []
            issue_ready = attempt_ready
            if prediction.is_dependence:
                if measuring:
                    stats.dependences_predicted += 1
                if prediction.wait_all_older:
                    for record in window.all_records():
                        issue_ready = max(issue_ready, record.addr_ready - 1)
                        wait_targets.append(record)
                for distance in prediction.distances:
                    target = window.by_number(store_count - 1 - distance)
                    if target is not None:
                        issue_ready = max(issue_ready, target.addr_ready - 1)
                        wait_targets.append(target)
                for seq in prediction.store_seqs:
                    record = window.by_seq(seq)
                    if record is not None:
                        issue_ready = max(issue_ready, record.addr_ready - 1)
                        wait_targets.append(record)

            issue = load_ports.allocate(issue_ready)
            exec_cycle = issue + 1  # AGU
            resolution = resolve_load(
                candidates,
                mem.address,
                mem.size,
                exec_cycle,
                l1d_latency,
                fwd_filter,
                checker=self.invariants,
            )
            if resolution.kind is ForwardKind.CACHE:
                complete = self.hierarchy.load_access(op.pc, mem.address, exec_cycle)
                if measuring:
                    stats.cache_loads += 1
            elif resolution.kind is ForwardKind.FORWARD:
                complete = resolution.data_ready
                if measuring:
                    stats.forwarded_loads += 1
            else:
                complete = resolution.data_ready
                if measuring:
                    stats.partial_loads += 1

            commit_cycle = commit.allocate(max(complete + 1, 0))

            if not resolution.violated:
                break

            # ---- memory-order violation: lazy squash at commit, then replay --
            was_violated = True
            if measuring:
                stats.violations += 1
            training_store = (
                resolution.violation_store_commit
                if predictor.trains_at_commit
                else resolution.violation_store_detect
            )
            predictor.on_violation(
                ViolationInfo(
                    load_pc=op.pc,
                    load_seq=index,
                    load_snapshot=snapshot,
                    load_store_count=store_count,
                    store_pc=training_store.pc,
                    store_seq=training_store.seq,
                    store_snapshot=training_store.hist_snapshot,
                    store_number=training_store.store_number,
                    history=history,
                )
            )
            if config.violation_squash == "eager":
                # Squash as soon as the conflicting store resolves and finds
                # the mis-speculated load in the LQ.
                detection_cycle = max(exec_cycle, training_store.addr_ready)
                squash_cycle = detection_cycle + config.violation_penalty
            else:
                squash_cycle = commit_cycle + config.violation_penalty
            if measuring:
                stats.reexecuted_uops += min(
                    config.rob_entries,
                    config.dispatch_width * max(0, squash_cycle - attempt_dispatch),
                )
            attempt_dispatch = dispatch.allocate(squash_cycle)
            attempt_ready = max(
                attempt_dispatch + config.dispatch_to_issue_latency,
                ready_to_issue,
            )

        # ---- commit-time feedback ---------------------------------------------
        # Ground truth is the oracle dependence (youngest conflicting store at
        # the load's unconstrained execute estimate), not the post-wait window:
        # a correctly-waited load whose forwarder drained into the cache during
        # the wait still waited for the right store.
        actual = resolution.true_store if resolution.true_store is not None else oracle_store
        delayed = issue_ready > attempt_ready if prediction.is_dependence else False
        waited_correct = (
            prediction.is_dependence
            and actual is not None
            and any(target.seq == actual.seq for target in wait_targets)
        )
        false_positive = prediction.is_dependence and delayed and not waited_correct
        if measuring:
            if waited_correct:
                stats.correct_waits += 1
            if false_positive:
                stats.false_positives += 1
        predicted_number = wait_targets[0].store_number if wait_targets else None
        predictor.on_load_commit(
            LoadCommitInfo(
                pc=op.pc,
                seq=index,
                hist_snapshot=snapshot,
                store_count=store_count,
                prediction=prediction,
                predicted_store_number=predicted_number,
                actual_store_number=actual.store_number if actual else None,
                waited_correct=waited_correct,
                false_positive=false_positive,
                violated=was_violated,
                history=history,
            )
        )
        return issue, complete, commit_cycle
