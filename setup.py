"""Legacy setup shim: lets `pip install -e .` / `setup.py develop` work in
offline environments that lack the `wheel` package (PEP 660 editable builds
need it). All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
