#!/usr/bin/env python3
"""Register a custom memory dependence predictor and sweep it by name.

Implements the simplest trainable MDP — a PC-indexed blacklist: a load
that has ever violated waits for all older stores forever after (a
degenerate one-entry-per-PC Store Sets). It is deliberately naive; the
point is the plumbing:

1. subclass ``repro.mdp.base.MDPredictor``;
2. ``register_predictor("pc-blacklist", PCBlacklistPredictor)``;
3. every name-based API — ``simulate``, ``RunSpec``, ``ExperimentGrid``,
   sweep cells — can now run it like a built-in.

Usage:
    python examples/custom_predictor.py [workload] [num_ops]
"""

import sys

from repro import RunSpec, register_predictor, run_spec
from repro.analysis.report import format_table
from repro.mdp.base import NO_DEPENDENCE, MDPredictor, Prediction


class PCBlacklistPredictor(MDPredictor):
    """Loads that ever violated wait for every older store, forever."""

    name = "pc-blacklist"

    def __init__(self) -> None:
        super().__init__()
        self._bad_pcs = set()

    def on_load_dispatch(self, load) -> Prediction:
        self.stats.load_predictions += 1
        self.stats.table_reads += 1
        if load.pc in self._bad_pcs:
            self.stats.dependences_predicted += 1
            return Prediction(wait_all_older=True)
        return NO_DEPENDENCE

    def on_violation(self, violation) -> None:
        self.stats.trainings += 1
        self.stats.table_writes += 1
        self._bad_pcs.add(violation.load_pc)

    def storage_bits(self) -> int:
        # One 64-bit PC per blacklisted load (an unlimited-storage study
        # predictor; a real design would hash into a fixed table).
        return 64 * len(self._bad_pcs)


register_predictor("pc-blacklist", PCBlacklistPredictor)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "511.povray"
    num_ops = int(sys.argv[2]) if len(sys.argv) > 2 else 30_000

    spec = RunSpec(workload=workload, predictor="ideal", num_ops=num_ops)
    rows = []
    for name in ("ideal", "pc-blacklist", "always-speculate", "store-sets"):
        result = run_spec(spec.with_overrides(predictor=name))
        rows.append(
            [
                name,
                result.ipc,
                result.violation_mpki,
                result.false_positive_mpki,
            ]
        )
    print(
        format_table(
            ["predictor", "IPC", "viol MPKI", "false-dep MPKI"],
            rows,
            title=f"{workload}, {num_ops} ops — custom predictor via registry",
        )
    )


if __name__ == "__main__":
    main()
