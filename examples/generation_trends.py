#!/usr/bin/env python3
"""Reproduce the paper's motivation figure (Fig. 2): MDP across generations.

Sweeps the core-generation presets (Nehalem-like 2008 through Alder
Lake-like 2021) and shows how memory-dependence MPKI and the gap to an ideal
predictor grow with the speculation window — the trend that motivates PHAST.

Usage:
    python examples/generation_trends.py [num_ops]
"""

import sys

from repro import GENERATIONS, ExperimentGrid
from repro.analysis.report import format_table

WORKLOADS = ["500.perlbench_1", "502.gcc_1", "511.povray", "541.leela"]
PREDICTORS = ["store-sets", "phast"]


def main() -> None:
    num_ops = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    grid = ExperimentGrid(num_ops=num_ops)

    rows = []
    for name, config in GENERATIONS.items():
        for predictor in PREDICTORS:
            violations, false_deps = grid.mean_mpki(WORKLOADS, predictor, config)
            normalized = grid.mean_normalized_ipc(WORKLOADS, predictor, config)
            rows.append(
                [
                    name,
                    config.year,
                    f"ROB {config.rob_entries} / SQ {config.sq_entries}",
                    predictor,
                    violations + false_deps,
                    (1.0 - normalized) * 100.0,
                ]
            )
    print(
        format_table(
            ["generation", "year", "window", "predictor", "total MPKI", "gap vs ideal %"],
            rows,
            title="Fig. 2: memory dependence prediction across core generations",
        )
    )
    print(
        "\nReading: as the out-of-order window grows (more unresolved stores"
        "\nin flight, wider issue), both the misprediction rate and the cost"
        "\nof imperfect prediction grow — Store Sets' gap roughly triples"
        "\nfrom the 2008 core to the 2021 core, while PHAST holds close to"
        "\nideal throughout (the paper's Fig. 2 motivation)."
    )


if __name__ == "__main__":
    main()
