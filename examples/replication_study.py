#!/usr/bin/env python3
"""Statistical replication: is the PHAST-vs-NoSQ delta real?

The synthetic workloads are one sample per seed. This example re-seeds a
workload several times, reports each predictor's IPC with a 95% confidence
interval, and computes the *paired* per-seed speedup — the right way to
decide whether a small reproduced delta (the paper's +1.29% over NoSQ) is
statistically meaningful at a given trace length.

Usage:
    python examples/replication_study.py [workload] [replicas] [num_ops]
"""

import sys

from repro.sim.replication import replicate, replicated_speedup


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "511.povray"
    replicas = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    num_ops = int(sys.argv[3]) if len(sys.argv) > 3 else 20_000

    print(f"{workload}: {replicas} seed replicas x {num_ops} micro-ops\n")

    metrics = {}
    for predictor in ("ideal", "phast", "nosq", "store-sets"):
        metrics[predictor] = replicate(
            workload, predictor, replicas=replicas, num_ops=num_ops,
            metric_name=f"{predictor} IPC",
        )
        print(f"  {metrics[predictor]}")

    print()
    for baseline in ("nosq", "store-sets"):
        speedup = replicated_speedup(
            workload, "phast", baseline, replicas=replicas, num_ops=num_ops
        )
        verdict = (
            "significant"
            if speedup.mean - speedup.ci95_half_width > 0
            else "within noise"
        )
        print(f"  {speedup}  -> {verdict}")

    if metrics["phast"].overlaps(metrics["nosq"]):
        print(
            "\nNote: the unpaired PHAST and NoSQ intervals overlap — only the"
            "\npaired per-seed comparison above can resolve deltas this small."
        )


if __name__ == "__main__":
    main()
