#!/usr/bin/env python3
"""Reproduce Table II and Fig. 16: predictor storage and energy.

Prints the predictor configuration table (sizes must match the paper's
18.5 / 19 / 38.6 / 13 / 14.5 KB), then simulates the suite subset to charge
the calibrated CACTI-like energy model with real access counts.

Usage:
    python examples/storage_energy_report.py [num_ops]
"""

import sys

from repro import ExperimentGrid
from repro.analysis.charts import bar_chart
from repro.analysis.figures import fig16_energy
from repro.mdp.storage import format_table2

WORKLOADS = ["500.perlbench_1", "502.gcc_1", "511.povray", "541.leela"]


def main() -> None:
    num_ops = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000

    print("Table II — predictor configurations:\n")
    print(format_table2())

    print(f"\nFig. 16 — energy over {len(WORKLOADS)} workloads "
          f"({num_ops} micro-ops each):\n")
    grid = ExperimentGrid(num_ops=num_ops)
    rows = fig16_energy(grid, WORKLOADS)
    print(
        bar_chart(
            [(row.predictor, row.total_nj) for row in rows],
            title="total predictor energy (nJ)",
            unit=" nJ",
        )
    )
    print(
        "\nReading: the 12-table MDP-TAGE pays for every prediction with a"
        "\nprobe of every component; PHAST's eight small tables keep its"
        "\naccess energy in the same class as the other compact predictors"
        "\nwhile delivering the best accuracy (the paper's Fig. 16 message)."
    )


if __name__ == "__main__":
    main()
