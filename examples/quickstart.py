#!/usr/bin/env python3
"""Quickstart: simulate one workload under several memory dependence predictors.

Runs the 511.povray-like workload (whose dependences are tightly tied to
branch history through an indirect branch — the paper's Sec. III-C example)
under the ideal oracle, PHAST, and the baselines, and prints IPC and MPKI.

Usage:
    python examples/quickstart.py [workload] [num_ops]
"""

import sys

from repro.api import RunSpec, simulate
from repro.analysis.report import format_table

PREDICTORS = [
    "ideal",
    "phast",
    "nosq",
    "mdp-tage-s",
    "mdp-tage",
    "store-sets",
    "always-speculate",
]


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "511.povray"
    num_ops = int(sys.argv[2]) if len(sys.argv) > 2 else 30_000

    results = {
        name: simulate(RunSpec(workload=workload, predictor=name, num_ops=num_ops))
        for name in PREDICTORS
    }
    ideal_ipc = results["ideal"].ipc

    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                result.ipc,
                result.ipc / ideal_ipc,
                result.violation_mpki,
                result.false_positive_mpki,
            ]
        )
    print(
        format_table(
            ["predictor", "IPC", "vs ideal", "violation MPKI", "false-dep MPKI"],
            rows,
            title=f"{workload} — {num_ops} micro-ops",
        )
    )

    phast = results["phast"]
    print(
        f"\nPHAST reached {phast.ipc / ideal_ipc:.1%} of the ideal predictor's IPC "
        f"with {phast.pipeline.violations} squashes and "
        f"{phast.pipeline.false_positives} false dependences."
    )


if __name__ == "__main__":
    main()
