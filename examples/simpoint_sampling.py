#!/usr/bin/env python3
"""SimPoint-style sampled simulation (the paper's Sec. V methodology).

Splits a workload into intervals, clusters their hashed-PC phase signatures,
simulates only each cluster's representative (with warm-up), and compares
the weighted-IPC estimate against the full-trace run.

Usage:
    python examples/simpoint_sampling.py [workload] [total_ops] [interval_ops]
"""

import sys
import time

from repro.api import RunSpec, simulate
from repro.analysis.simpoints import choose_simpoints, simulate_simpoints
from repro.sim.simulator import get_trace


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "502.gcc_1"
    total_ops = int(sys.argv[2]) if len(sys.argv) > 2 else 40_000
    interval_ops = int(sys.argv[3]) if len(sys.argv) > 3 else 5_000

    trace = get_trace(workload, total_ops)
    points = choose_simpoints(trace, interval_ops, max_clusters=4)
    print(f"{workload}: {total_ops} ops -> {len(points)} simulation points")
    for point in points:
        print(
            f"  interval {point.interval_index:3d} "
            f"(ops {point.interval_index * interval_ops}..."
            f"{(point.interval_index + 1) * interval_ops})  "
            f"weight {point.weight:.2f}"
        )

    started = time.time()
    full = simulate(RunSpec(workload=workload, predictor="phast", num_ops=total_ops))
    full_seconds = time.time() - started

    started = time.time()
    sampled = simulate_simpoints(
        RunSpec(workload=workload, predictor="phast", num_ops=total_ops),
        interval_ops=interval_ops,
        max_clusters=4,
    )
    sampled_seconds = time.time() - started

    error = abs(sampled.weighted_ipc - full.ipc) / full.ipc * 100.0
    print(f"\nfull trace IPC      {full.ipc:.4f}  ({full_seconds:.1f}s)")
    print(f"SimPoint estimate   {sampled.weighted_ipc:.4f}  ({sampled_seconds:.1f}s)")
    print(f"error {error:.1f}%  |  simulated only "
          f"{sampled.simulated_ops}/{sampled.total_ops} ops "
          f"({sampled.speedup_factor:.1f}x less simulation)")


if __name__ == "__main__":
    main()
