#!/usr/bin/env python3
"""Reproduce the paper's Sec. III-C limit study interactively (Figs. 6, 10, 11).

Sweeps UnlimitedNoSQ's fixed history length, runs UnlimitedMDPTAGE and
UnlimitedPHAST, and prints IPC + tracked paths — the evidence behind the
paper's key claim that the store-to-load path (N+1 divergent branches) is
the right history length, discovered per conflict rather than fixed.

Usage:
    python examples/history_length_study.py [num_ops]
"""

import sys

from repro import ExperimentGrid
from repro.analysis import figures
from repro.analysis.report import format_table

WORKLOADS = ["500.perlbench_1", "502.gcc_1", "511.povray", "531.deepsjeng"]


def main() -> None:
    num_ops = int(sys.argv[1]) if len(sys.argv) > 1 else 25_000
    grid = ExperimentGrid(num_ops=num_ops)

    print("Fig. 6 — unlimited predictors (IPC vs ideal, mean tracked paths):")
    points = figures.fig06_unlimited_sweep(
        grid, WORKLOADS, nosq_lengths=(1, 2, 4, 6, 8, 12, 16)
    )
    print(
        format_table(
            ["variant", "IPC vs ideal", "mean paths"],
            [[p.label, p.normalized_ipc, p.mean_paths] for p in points],
        )
    )

    print("\nFig. 10 — unique conflicts per required history length (N+1):")
    histogram = figures.fig10_conflict_length_histogram(WORKLOADS, num_ops=num_ops)
    total = histogram.total()
    print(
        format_table(
            ["N+1", "conflicts", "cumulative %"],
            [
                [length, count, 100.0 * histogram.cumulative_fraction_up_to(length)]
                for length, count in histogram.sorted_items()
            ],
        )
    )

    print("\nFig. 11 — UnlimitedPHAST IPC at capped maximum history lengths:")
    series = figures.fig11_max_history(grid, WORKLOADS, clamps=(4, 8, 16, 32, None))
    print(
        format_table(
            ["cap", "IPC vs ideal"],
            [[label, value] for label, value in series.items()],
        )
    )
    print(
        "\nReading: NoSQ saturates around 6-8 branches while its path count"
        "\nkeeps climbing; PHAST matches the best fixed length with fewer"
        "\npaths because each conflict is trained at exactly N+1; and a cap"
        "\nof 32 branches is indistinguishable from unlimited history."
    )


if __name__ == "__main__":
    main()
