#!/usr/bin/env python3
"""Suite-wide predictor comparison — a miniature of the paper's Fig. 15.

Runs every SPEC CPU 2017-like profile under the five evaluated predictors,
prints per-application IPC normalised to the ideal predictor, and the
geometric-mean summary with the paper's headline speedups.

Usage:
    python examples/suite_comparison.py [num_ops] [--subset N]
"""

import argparse

from repro import ExperimentGrid, spec_suite
from repro.analysis.report import format_table
from repro.common.stats import geometric_mean

PREDICTORS = ["store-sets", "nosq", "mdp-tage", "mdp-tage-s", "phast"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("num_ops", type=int, nargs="?", default=20_000)
    parser.add_argument("--subset", type=int, default=None,
                        help="only the first N workloads (quick runs)")
    args = parser.parse_args()

    workloads = spec_suite(subset=args.subset)
    grid = ExperimentGrid(num_ops=args.num_ops)

    print(f"Simulating {len(workloads)} workloads x {len(PREDICTORS) + 1} predictors "
          f"at {args.num_ops} micro-ops each...\n")

    ideal = grid.run_suite(workloads, "ideal")
    table = []
    normalized = {name: [] for name in PREDICTORS}
    for workload in workloads:
        row = [workload]
        for name in PREDICTORS:
            result = grid.run(workload, name)
            ratio = result.ipc / ideal[workload].ipc
            normalized[name].append(ratio)
            row.append(ratio)
        table.append(row)
    table.append(
        ["GEOMEAN"] + [geometric_mean(normalized[name]) for name in PREDICTORS]
    )
    print(format_table(["workload"] + PREDICTORS, table,
                       title="IPC normalised to the ideal MDP (Fig. 15)"))

    phast = geometric_mean(normalized["phast"])
    print("\nPHAST mean speedups (paper: +5.05% / +1.29% / +3.04% / +2.10%):")
    for baseline in ("store-sets", "nosq", "mdp-tage", "mdp-tage-s"):
        speedup = (phast / geometric_mean(normalized[baseline]) - 1.0) * 100.0
        print(f"  vs {baseline:<12} {speedup:+.2f}%")


if __name__ == "__main__":
    main()
