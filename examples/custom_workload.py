#!/usr/bin/env python3
"""Build a custom workload profile and study how predictors handle it.

Demonstrates the workload API: a profile is a weighted mix of dependence
motifs. This one pits the two extremes against each other —

* a *path-dependent* conflict (an indirect branch selects which of four
  stores the load depends on): PHAST's home turf;
* a *data-dependent* conflict (addresses collide at random with identical
  history): nobody's home turf, and the paper's main source of PHAST false
  positives (541.leela).

Tweak the weights or motif parameters and watch the predictor ranking move.

Usage:
    python examples/custom_workload.py
"""

from repro.api import RunSpec, simulate
from repro.analysis.report import format_table
from repro.workloads.generator import MotifSpec, WorkloadProfile

PROFILE = WorkloadProfile(
    name="custom-demo",
    seed=2024,
    description="path-dependent vs data-dependent conflicts, half and half",
    run_length_mean=10.0,
    motifs=(
        MotifSpec("filler", 18.0, {"random_branch_prob": 0.25}, replicas=4),
        MotifSpec(
            "path",
            0.5,
            {
                "distances": (0, 1, 2, 3),
                "inter_branches": 3,
                "indirect": True,
                "herald_bits": 2,
            },
            replicas=4,
        ),
        MotifSpec("data_dependent", 0.5, {"address_slots": 4}, replicas=4),
    ),
)

PREDICTORS = ["ideal", "phast", "nosq", "store-sets", "mdp-tage"]


def main() -> None:
    results = {
        name: simulate(RunSpec(workload=PROFILE, predictor=name, num_ops=40_000))
        for name in PREDICTORS
    }
    ideal_ipc = results["ideal"].ipc
    print(
        format_table(
            ["predictor", "IPC vs ideal", "violations", "false deps", "correct waits"],
            [
                [
                    name,
                    r.ipc / ideal_ipc,
                    r.pipeline.violations,
                    r.pipeline.false_positives,
                    r.pipeline.correct_waits,
                ]
                for name, r in results.items()
            ],
            title=f"custom workload: {PROFILE.description}",
        )
    )
    print(
        "\nTry: raise the data_dependent weight and watch every predictor's\n"
        "false dependences climb — no path information can capture those\n"
        "conflicts (Sec. VI-A); raise the path weight instead and PHAST\n"
        "pulls away from the fixed-history baselines."
    )


if __name__ == "__main__":
    main()
